#include "pgrid/pgrid_peer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "pgrid/pgrid_builder.h"

namespace gridvine {
namespace {

Key K(const std::string& bits) { return Key::FromBits(bits).value(); }

/// Fixture owning a small, manually wired 4-peer overlay over 2-bit paths:
/// peers 0..3 own paths 00, 01, 10, 11.
class PGridPeerTest : public ::testing::Test {
 protected:
  PGridPeerTest()
      : net_(&sim_, std::make_unique<ConstantLatency>(0.05), Rng(42)) {
    PGridPeer::Options opts;
    opts.key_depth = 4;
    opts.retry.base_timeout = 2.0;
    opts.retry.max_attempts = 2;
    for (int i = 0; i < 4; ++i) {
      peers_.push_back(
          std::make_unique<PGridPeer>(&sim_, &net_, Rng(uint64_t(100 + i)), opts));
    }
    std::vector<PGridPeer*> raw;
    for (auto& p : peers_) raw.push_back(p.get());
    PGridBuilder::BuildBalanced(raw, &bootstrap_rng_, /*refs_per_level=*/2);
  }

  PGridPeer* peer(size_t i) { return peers_[i].get(); }

  Simulator sim_;
  Network net_;
  Rng bootstrap_rng_{7};
  std::vector<std::unique_ptr<PGridPeer>> peers_;
};

TEST_F(PGridPeerTest, PathsAssigned) {
  EXPECT_EQ(peer(0)->path(), K("00"));
  EXPECT_EQ(peer(1)->path(), K("01"));
  EXPECT_EQ(peer(2)->path(), K("10"));
  EXPECT_EQ(peer(3)->path(), K("11"));
}

TEST_F(PGridPeerTest, Responsibility) {
  EXPECT_TRUE(peer(0)->IsResponsibleFor(K("0010")));
  EXPECT_FALSE(peer(0)->IsResponsibleFor(K("0110")));
  EXPECT_TRUE(peer(3)->IsResponsibleFor(K("1111")));
  // Short key prefixing the path counts as in-subtree.
  EXPECT_TRUE(peer(0)->IsResponsibleFor(K("0")));
}

TEST_F(PGridPeerTest, LocalUpdateAndRetrieve) {
  bool done = false;
  peer(0)->Update(K("0011"), "hello", [&](Result<PGridPeer::UpdateOutcome> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->hops, 0);
    done = true;
  });
  EXPECT_TRUE(done);  // responsible locally: synchronous
  bool got = false;
  peer(0)->Retrieve(K("0011"), [&](Result<PGridPeer::LookupResult> r) {
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->values.size(), 1u);
    EXPECT_EQ(r->values[0], "hello");
    got = true;
  });
  EXPECT_TRUE(got);
}

TEST_F(PGridPeerTest, RemoteUpdateThenRemoteRetrieve) {
  bool stored = false;
  peer(0)->Update(K("1101"), "v-remote",
                  [&](Result<PGridPeer::UpdateOutcome> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    EXPECT_GE(r->hops, 1);
                    stored = true;
                  });
  sim_.Run();
  ASSERT_TRUE(stored);
  // The responsible peer for prefix "11" now holds the entry.
  EXPECT_EQ(peer(3)->StorageSize(), 1u);
  EXPECT_EQ(peer(3)->storage().begin()->second, "v-remote");
}

TEST_F(PGridPeerTest, RetrieveFindsRemoteValue) {
  peer(3)->InsertLocal(K("1101"), "stored-at-3");
  bool got = false;
  peer(0)->Retrieve(K("1101"), [&](Result<PGridPeer::LookupResult> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->values.size(), 1u);
    EXPECT_EQ(r->values[0], "stored-at-3");
    EXPECT_GE(r->hops, 1);
    EXPECT_GT(r->rtt, 0.0);
    got = true;
  });
  sim_.Run();
  EXPECT_TRUE(got);
}

TEST_F(PGridPeerTest, PrefixRetrieveCollectsSubtree) {
  peer(1)->InsertLocal(K("0100"), "a");
  peer(1)->InsertLocal(K("0101"), "b");
  peer(1)->InsertLocal(K("0111"), "c");
  bool got = false;
  peer(1)->Retrieve(K("010"), [&](Result<PGridPeer::LookupResult> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->values.size(), 2u);  // 0100 and 0101, not 0111
    got = true;
  });
  EXPECT_TRUE(got);
}

TEST_F(PGridPeerTest, InsertIsIdempotent) {
  peer(0)->InsertLocal(K("0000"), "x");
  peer(0)->InsertLocal(K("0000"), "x");
  peer(0)->InsertLocal(K("0000"), "y");
  EXPECT_EQ(peer(0)->StorageSize(), 2u);
}

TEST_F(PGridPeerTest, RemoveDeletesRemotely) {
  peer(3)->InsertLocal(K("1110"), "doomed");
  bool removed = false;
  peer(0)->Remove(K("1110"), "doomed", [&](Result<PGridPeer::UpdateOutcome> r) {
    ASSERT_TRUE(r.ok()) << r.status();
    removed = true;
  });
  sim_.Run();
  EXPECT_TRUE(removed);
  EXPECT_EQ(peer(3)->StorageSize(), 0u);
}

TEST_F(PGridPeerTest, RetrieveTimesOutWhenRegionDead) {
  net_.SetAlive(peer(3)->id(), false);
  net_.SetAlive(peer(2)->id(), false);  // whole "1" subtree gone
  bool failed = false;
  peer(0)->Retrieve(K("1100"), [&](Result<PGridPeer::LookupResult> r) {
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsTimeout()) << r.status();
    failed = true;
  });
  sim_.Run();
  EXPECT_TRUE(failed);
  EXPECT_GE(peer(0)->counters().timeouts, 1u);
}

TEST_F(PGridPeerTest, UpdateIsReplicatedToReplicaSet) {
  // Make peer 2 a replica of peer 3 (same path).
  peer(2)->SetPath(K("11"));
  peer(3)->routing()->AddReplica(peer(2)->id());
  bool done = false;
  peer(0)->Update(K("1111"), "copied",
                  [&](Result<PGridPeer::UpdateOutcome> r) {
                    ASSERT_TRUE(r.ok()) << r.status();
                    done = true;
                  });
  sim_.Run();
  ASSERT_TRUE(done);
  // Whichever of {2,3} handled it, the other must hold the replica copy.
  EXPECT_EQ(peer(2)->StorageSize() + peer(3)->StorageSize(), 2u);
}

TEST_F(PGridPeerTest, EvictForeignEntries) {
  peer(0)->InsertLocal(K("0000"), "mine");
  peer(0)->InsertLocal(K("1100"), "foreign");
  auto evicted = peer(0)->EvictForeignEntries();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].second, "foreign");
  EXPECT_EQ(peer(0)->StorageSize(), 1u);
}

TEST_F(PGridPeerTest, CountersTrackTraffic) {
  peer(3)->InsertLocal(K("1100"), "v");
  peer(0)->Retrieve(K("1100"), [](Result<PGridPeer::LookupResult>) {});
  sim_.Run();
  EXPECT_EQ(peer(0)->counters().retrieves_issued, 1u);
}

}  // namespace
}  // namespace gridvine
