#ifndef GRIDVINE_MAPPING_PATH_MATERIALIZER_H_
#define GRIDVINE_MAPPING_PATH_MATERIALIZER_H_

#include <vector>

#include "common/result.h"
#include "mapping/mapping_graph.h"
#include "mapping/schema_mapping.h"

namespace gridvine {

/// Materializes composed "shortcut" mappings: when two schemas are only
/// connected through a long chain of mappings, queries pay one reformulation
/// round trip per hop. Composing the chain into a single stored mapping
/// (paper Section 3's transitive closures, used constructively) turns the
/// chain into a direct edge — a natural extension the demo's "new mapping
/// paths gradually replace deprecated ones" storyline points at.
///
/// Shortcuts inherit `provenance = automatic` and the product of the chain's
/// confidences, so the Bayesian assessor treats them like any other
/// automatic mapping.
class PathMaterializer {
 public:
  struct Options {
    /// Only chains of at least this many mappings become shortcuts.
    int min_path_len = 3;
    /// Chains longer than this are not searched (BFS bound).
    int max_path_len = 6;
    /// Global cap on shortcuts produced per invocation.
    size_t max_shortcuts = 32;
    /// Shortcuts whose composed correspondence set would be smaller than
    /// this are skipped (they would reformulate almost nothing).
    size_t min_correspondences = 1;
  };

  explicit PathMaterializer(Options options) : options_(options) {}
  PathMaterializer() : PathMaterializer(Options()) {}

  /// Composes a concrete mapping chain into one mapping with id
  /// "shortcut-<src>-<dst>". Fails on an empty or broken chain.
  static Result<SchemaMapping> MaterializePath(
      const std::vector<SchemaMapping>& path);

  /// Finds distant schema pairs in `graph` and returns their shortcut
  /// mappings (not inserted anywhere; the caller publishes them). Pairs are
  /// scanned in deterministic order until `max_shortcuts` is reached.
  std::vector<SchemaMapping> SelectAndMaterialize(
      const MappingGraph& graph) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace gridvine

#endif  // GRIDVINE_MAPPING_PATH_MATERIALIZER_H_
