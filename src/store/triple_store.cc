#include "store/triple_store.h"

#include <algorithm>
#include <array>

#include "common/mem_estimate.h"
#include "common/string_util.h"

namespace gridvine {

// --- Ingest --------------------------------------------------------------------

void TripleStore::InsertEncoded(const Triple& t) {
  IdTriple enc{dict_.Intern(t.subject()), dict_.Intern(t.predicate()),
               dict_.Intern(t.object())};
  if (present_.count(enc)) return;  // idempotent: no visible change, no bump
  ++version_;
  uint32_t slot = static_cast<uint32_t>(slots_.size());
  slots_.push_back(enc);
  live_.push_back(true);
  present_.emplace(enc, slot);
  by_subject_[enc.s].push_back(slot);
  by_predicate_[enc.p].push_back(slot);
  by_object_[enc.o].push_back(slot);
}

Status TripleStore::Insert(const Triple& t) {
  GV_RETURN_NOT_OK(t.Validate());
  InsertEncoded(t);
  return Status::OK();
}

Status TripleStore::InsertBatch(const std::vector<Triple>& triples) {
  // Validate everything up front so a bad triple rejects the whole batch
  // without leaving a partial insert behind.
  for (const Triple& t : triples) {
    GV_RETURN_NOT_OK(t.Validate());
  }
  slots_.reserve(slots_.size() + triples.size());
  live_.reserve(live_.size() + triples.size());
  present_.reserve(present_.size() + triples.size());
  for (const Triple& t : triples) {
    InsertEncoded(t);
  }
  return Status::OK();
}

bool TripleStore::Erase(const Triple& t) {
  IdTriple enc;
  {
    auto s = dict_.Lookup(t.subject());
    auto p = dict_.Lookup(t.predicate());
    auto o = dict_.Lookup(t.object());
    if (!s || !p || !o) return false;  // some term never seen: not present
    enc = IdTriple{*s, *p, *o};
  }
  auto it = present_.find(enc);
  if (it == present_.end()) return false;
  // Tombstone the slot; posting-list entries pointing at dead slots are
  // skipped on scan and reclaimed wholesale by MaybeCompact. The present
  // map, slot list and counters always change together — a miss above
  // leaves the store untouched.
  live_[it->second] = false;
  present_.erase(it);
  ++dead_count_;
  ++version_;
  MaybeCompact();
  return true;
}

bool TripleStore::Contains(const Triple& t) const {
  auto s = dict_.Lookup(t.subject());
  if (!s) return false;
  auto p = dict_.Lookup(t.predicate());
  if (!p) return false;
  auto o = dict_.Lookup(t.object());
  if (!o) return false;
  return present_.count(IdTriple{*s, *p, *o}) > 0;
}

void TripleStore::Clear() {
  dict_.Clear();
  slots_.clear();
  live_.clear();
  present_.clear();
  by_subject_.clear();
  by_predicate_.clear();
  by_object_.clear();
  dead_count_ = 0;
  ++version_;
}

void TripleStore::MaybeCompact() {
  if (slots_.size() < kCompactMinSlots) return;
  if (double(dead_count_) < kCompactDeadFraction * double(slots_.size())) {
    return;
  }
  // Compaction renumbers slots; match results are unchanged, but bump the
  // version anyway so any consumer keyed on internal state stays safe.
  ++version_;
  std::vector<IdTriple> new_slots;
  new_slots.reserve(present_.size());
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (live_[slot]) new_slots.push_back(slots_[slot]);
  }
  slots_ = std::move(new_slots);
  live_.assign(slots_.size(), true);
  dead_count_ = 0;
  present_.clear();
  by_subject_.clear();
  by_predicate_.clear();
  by_object_.clear();
  present_.reserve(slots_.size());
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    const IdTriple& enc = slots_[slot];
    present_.emplace(enc, slot);
    by_subject_[enc.s].push_back(slot);
    by_predicate_[enc.p].push_back(slot);
    by_object_[enc.o].push_back(slot);
  }
}

// --- Pattern matching ----------------------------------------------------------

TripleStore::CompiledPattern TripleStore::Compile(
    const TriplePattern& pattern) const {
  CompiledPattern cp;
  const TriplePos kAll[] = {TriplePos::kSubject, TriplePos::kPredicate,
                            TriplePos::kObject};
  for (int i = 0; i < 3; ++i) {
    const Term& term = pattern.at(kAll[i]);
    if (term.IsVariable()) {
      // Repeated variables become id-equality constraints.
      for (int j = 0; j < i; ++j) {
        const Term& prev = pattern.at(kAll[j]);
        if (prev.IsVariable() && prev.value() == term.value()) {
          cp.equal_positions.emplace_back(j, i);
        }
      }
      continue;
    }
    if (pattern.IsExactConstant(kAll[i])) {
      auto id = dict_.Lookup(term);
      if (!id) {
        cp.impossible = true;  // constant never interned: nothing can match
        return cp;
      }
      cp.exact[i] = *id;
    } else {
      cp.like[i] = &term.value();  // '%' literal: needs string-level LIKE
    }
  }
  return cp;
}

bool TripleStore::MatchesIds(CompiledPattern& cp, const IdTriple& t) const {
  for (int i = 0; i < 3; ++i) {
    if (cp.exact[i] != kNoTermId && cp.exact[i] != IdAt(t, i)) return false;
    if (cp.like[i] != nullptr) {
      TermId id = IdAt(t, i);
      auto [it, fresh] = cp.like_verdicts[i].try_emplace(id, false);
      if (fresh) {
        const Term& data = dict_.Decode(id);
        it->second = data.IsLiteral() && LikeMatch(data.value(), *cp.like[i]);
      }
      if (!it->second) return false;
    }
  }
  for (auto [a, b] : cp.equal_positions) {
    if (IdAt(t, a) != IdAt(t, b)) return false;
  }
  return true;
}

std::vector<uint32_t> TripleStore::MatchingSlots(
    const TriplePattern& pattern) const {
  std::vector<uint32_t> out;
  CompiledPattern cp = Compile(pattern);
  if (cp.impossible) return out;

  // Pick the smallest applicable posting list (sizes include tombstones —
  // a fine selectivity estimate since compaction bounds the dead fraction).
  const std::vector<uint32_t>* postings = nullptr;
  const PostingMap* maps[3] = {&by_subject_, &by_predicate_, &by_object_};
  for (int i = 0; i < 3; ++i) {
    if (cp.exact[i] == kNoTermId) continue;
    auto it = maps[i]->find(cp.exact[i]);
    if (it == maps[i]->end()) return out;  // interned but never in a triple
    if (postings == nullptr || it->second.size() < postings->size()) {
      postings = &it->second;
    }
  }

  if (postings != nullptr) {
    for (uint32_t slot : *postings) {
      if (live_[slot] && MatchesIds(cp, slots_[slot])) out.push_back(slot);
    }
  } else {
    for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
      if (live_[slot] && MatchesIds(cp, slots_[slot])) out.push_back(slot);
    }
  }
  return out;
}

Triple TripleStore::DecodeSlot(uint32_t slot) const {
  const IdTriple& enc = slots_[slot];
  return Triple(dict_.Decode(enc.s), dict_.Decode(enc.p), dict_.Decode(enc.o));
}

std::vector<Triple> TripleStore::Select(const TriplePattern& pattern) const {
  std::vector<uint32_t> slots = MatchingSlots(pattern);
  std::vector<Triple> out;
  out.reserve(slots.size());
  for (uint32_t slot : slots) out.push_back(DecodeSlot(slot));
  return out;
}

std::vector<BindingSet> TripleStore::MatchPattern(
    const TriplePattern& pattern) const {
  // Variable positions, deduplicated: a repeated variable binds once (the
  // id-equality constraint already guaranteed both positions agree).
  struct VarPos {
    const std::string* name;
    int pos;
  };
  std::array<VarPos, 3> vars;
  int n_vars = 0;
  const TriplePos kAll[] = {TriplePos::kSubject, TriplePos::kPredicate,
                            TriplePos::kObject};
  for (int i = 0; i < 3; ++i) {
    const Term& term = pattern.at(kAll[i]);
    if (!term.IsVariable()) continue;
    bool seen = false;
    for (int v = 0; v < n_vars; ++v) {
      if (*vars[size_t(v)].name == term.value()) seen = true;
    }
    if (!seen) vars[size_t(n_vars++)] = {&term.value(), i};
  }

  std::vector<uint32_t> slots = MatchingSlots(pattern);
  std::vector<BindingSet> out;
  out.reserve(slots.size());
  for (uint32_t slot : slots) {
    const IdTriple& enc = slots_[slot];
    BindingSet b;
    for (int v = 0; v < n_vars; ++v) {
      b.emplace(*vars[size_t(v)].name,
                dict_.Decode(IdAt(enc, vars[size_t(v)].pos)));
    }
    out.push_back(std::move(b));
  }
  return out;
}

std::vector<Term> TripleStore::Project(const std::vector<BindingSet>& bindings,
                                       const std::string& var) const {
  std::set<Term> seen;
  for (const BindingSet& b : bindings) {
    auto it = b.find(var);
    if (it != b.end()) seen.insert(it->second);
  }
  return std::vector<Term>(seen.begin(), seen.end());
}

// --- Join ----------------------------------------------------------------------

namespace {

/// A join key: the row's terms for the shared variables, as ids from a
/// join-local interning table — fixed-width, no string concatenation.
/// Up to kMaxInlineVars shared variables are stored inline (a binding set
/// holds at most a handful of variables in practice).
constexpr size_t kMaxInlineVars = 8;

struct JoinKey {
  std::array<uint32_t, kMaxInlineVars> ids;
  uint8_t n = 0;
  bool operator==(const JoinKey& other) const {
    if (n != other.n) return false;
    for (uint8_t i = 0; i < n; ++i) {
      if (ids[i] != other.ids[i]) return false;
    }
    return true;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ k.n;
    for (uint8_t i = 0; i < k.n; ++i) {
      h ^= k.ids[i];
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
    }
    return size_t(h);
  }
};

}  // namespace

std::vector<BindingSet> TripleStore::Join(const std::vector<BindingSet>& left,
                                          const std::vector<BindingSet>& right) {
  if (left.empty() || right.empty()) return {};
  // Shared variables from the first rows (all rows of one side share keys).
  std::vector<std::string> shared;
  for (const auto& [var, _] : left[0]) {
    if (right[0].count(var)) shared.push_back(var);
  }

  // Join-local dictionary: each distinct term is hashed as a string exactly
  // once; rows are then keyed by small fixed-width id tuples.
  std::unordered_map<Term, uint32_t, TermHash> local_ids;
  auto id_of = [&local_ids](const Term& t) {
    auto [it, _] = local_ids.emplace(t, uint32_t(local_ids.size()));
    return it->second;
  };
  auto key_of = [&](const BindingSet& b) {
    JoinKey key;
    for (const auto& var : shared) {
      key.ids[key.n++] = id_of(b.at(var));
    }
    return key;
  };

  if (shared.size() > kMaxInlineVars) {
    // Degenerate arity (not produced by triple-pattern queries): fall back
    // to a nested-loop join rather than widening the key type.
    std::vector<BindingSet> out;
    for (const BindingSet& l : left) {
      for (const BindingSet& r : right) {
        bool match = true;
        for (const auto& var : shared) {
          if (l.at(var) != r.at(var)) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        BindingSet merged = l;
        for (const auto& [var, term] : r) merged[var] = term;
        out.push_back(std::move(merged));
      }
    }
    return out;
  }

  std::unordered_multimap<JoinKey, const BindingSet*, JoinKeyHash> hashed;
  hashed.reserve(right.size());
  for (const BindingSet& b : right) hashed.emplace(key_of(b), &b);

  std::vector<BindingSet> out;
  for (const BindingSet& l : left) {
    auto range = hashed.equal_range(key_of(l));
    for (auto it = range.first; it != range.second; ++it) {
      BindingSet merged = l;
      for (const auto& [var, term] : *it->second) merged[var] = term;
      out.push_back(std::move(merged));
    }
  }
  return out;
}

// --- Introspection -------------------------------------------------------------

std::vector<Term> TripleStore::DistinctPredicates() const {
  std::set<Term> seen;
  for (const auto& [pid, postings] : by_predicate_) {
    for (uint32_t slot : postings) {
      if (live_[slot]) {
        seen.insert(dict_.Decode(pid));
        break;
      }
    }
  }
  return std::vector<Term>(seen.begin(), seen.end());
}

std::set<std::string> TripleStore::ObjectValuesFor(
    const std::string& predicate_uri) const {
  std::set<std::string> out;
  auto pid = dict_.Lookup(Term::Uri(predicate_uri));
  if (!pid) return out;
  auto it = by_predicate_.find(*pid);
  if (it == by_predicate_.end()) return out;
  for (uint32_t slot : it->second) {
    if (live_[slot]) out.insert(dict_.Decode(slots_[slot].o).value());
  }
  return out;
}

std::vector<Triple> TripleStore::All() const {
  std::vector<Triple> out;
  out.reserve(present_.size());
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (live_[slot]) out.push_back(DecodeSlot(slot));
  }
  return out;
}

size_t TripleStore::MemoryFootprint() const {
  size_t bytes = dict_.MemoryFootprint() +
                 slots_.capacity() * sizeof(IdTriple) + live_.capacity() / 8 +
                 HashMapBytes(present_);
  for (const PostingMap* pm : {&by_subject_, &by_predicate_, &by_object_}) {
    bytes += HashMapBytes(*pm);
    for (const auto& [id, postings] : *pm) {
      (void)id;
      bytes += postings.capacity() * sizeof(uint32_t);
    }
  }
  return bytes;
}

}  // namespace gridvine
