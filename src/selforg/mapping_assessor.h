#ifndef GRIDVINE_SELFORG_MAPPING_ASSESSOR_H_
#define GRIDVINE_SELFORG_MAPPING_ASSESSOR_H_

#include <map>
#include <string>
#include <vector>

#include "mapping/mapping_graph.h"

namespace gridvine {

/// Bayesian mapping-quality analysis via transitive closures (paper Section
/// 3.2, after the ICDE'06 "Probabilistic Message Passing in PDMS" technique):
///
/// Composing the attribute correspondences around a *cycle* of mappings
/// should return every attribute to itself. Each cycle therefore yields a
/// noisy observation about the mappings it traverses: consistent cycles are
/// evidence that all their mappings are correct; inconsistent cycles are
/// evidence that at least one is wrong.
///
/// Inference runs loopy belief propagation on the factor graph whose binary
/// variables are the automatic mappings (manual ones are clamped correct, as
/// prescribed by the paper) and whose factors are the cycle observations:
///
///   P(cycle consistent | all mappings correct)     = 1 − epsilon
///   P(cycle consistent | any mapping incorrect)    = delta
///
/// The posterior P(mapping correct | all cycles) is returned per mapping.
class MappingAssessor {
 public:
  struct Options {
    /// Max cycle length (edges) enumerated per mapping.
    int max_cycle_len = 4;
    /// P(inconsistent | all correct): partial correspondences, noise.
    double epsilon = 0.15;
    /// P(consistent | some incorrect): accidental closure.
    double delta = 0.10;
    /// Prior correctness for automatic mappings without creator confidence.
    double default_prior = 0.7;
    /// Belief-propagation sweeps.
    int bp_iterations = 12;
    /// A cycle needs at least this many attributes surviving the full chain
    /// to produce an observation at all.
    int min_chained_attributes = 1;
  };

  /// Default-configured assessor (definition below the class: a nested
  /// Options cannot appear as an in-class default argument).
  MappingAssessor();
  explicit MappingAssessor(Options options) : options_(options) {}

  /// One enumerated cycle and its consistency verdict.
  struct CycleObservation {
    std::vector<std::string> mapping_ids;
    bool consistent = false;
    int attributes_checked = 0;
  };

  struct Assessment {
    /// Posterior correctness per automatic mapping id.
    std::map<std::string, double> posterior;
    /// All cycle observations that produced evidence.
    std::vector<CycleObservation> observations;
  };

  /// Assesses every non-deprecated automatic mapping of `graph`.
  Assessment Assess(const MappingGraph& graph) const;

  /// Checks one cycle (ids must form a closed mapping chain in `graph`).
  /// Returns the observation, or attributes_checked == 0 when the chain is
  /// empty/broken (no evidence).
  CycleObservation CheckCycle(const MappingGraph& graph,
                              const std::vector<std::string>& cycle_ids) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

inline MappingAssessor::MappingAssessor() : options_(Options()) {}

}  // namespace gridvine

#endif  // GRIDVINE_SELFORG_MAPPING_ASSESSOR_H_
