// Allocation accounting for the event-engine hot path. Replaces the global
// allocator with a counting shim and verifies the acceptance criterion of
// the transport overhaul: steady-state Send()+delivery performs ZERO heap
// allocations beyond the message body the caller constructs — no per-message
// type-tag strings, no capturing-lambda boxes, no std::function copies.
//
// Under AddressSanitizer the allocator is already interposed, so the shim
// (and the zero-allocation assertions) are compiled out and the suite is a
// single skip marker.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>

#include "pgrid/messages.h"
#include "sim/event_fn.h"
#include "sim/network.h"
#include "sim/simulator.h"

#if defined(__SANITIZE_ADDRESS__)
#define GV_ALLOC_TEST_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GV_ALLOC_TEST_DISABLED 1
#endif
#endif

#ifdef GV_ALLOC_TEST_DISABLED

namespace gridvine {
namespace {
TEST(SimAllocTest, SkippedUnderSanitizers) {
  GTEST_SKIP() << "allocation counting is meaningless under ASan";
}
}  // namespace
}  // namespace gridvine

#else  // !GV_ALLOC_TEST_DISABLED

namespace {
// Not atomic: the simulator (and this test) are single-threaded.
size_t g_alloc_count = 0;
bool g_counting = false;
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gridvine {
namespace {

struct CountedAllocs {
  CountedAllocs() {
    g_alloc_count = 0;
    g_counting = true;
  }
  ~CountedAllocs() { g_counting = false; }
  size_t count() const { return g_alloc_count; }
};

struct PlainMsg : MessageBody {
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("alloc.plain");
    return t;
  }
  size_t SizeBytes() const override { return 16; }
};

/// Receives without allocating (no vector growth in the handler).
class CountingNode : public NetworkNode {
 public:
  void OnMessage(NodeId, std::shared_ptr<const MessageBody>) override {
    ++received;
  }
  size_t received = 0;
};

TEST(SimAllocTest, InlineTimerScheduleAndFireAllocatesNothing) {
  Simulator sim;
  int fired = 0;
  // Warm-up grows the heap vector to its working capacity.
  for (int i = 0; i < 64; ++i) sim.Schedule(double(i), [&fired] { ++fired; });
  sim.Run();
  size_t allocs;
  {
    CountedAllocs counter;
    for (int i = 0; i < 64; ++i) sim.Schedule(double(i), [&fired] { ++fired; });
    sim.Run();
    allocs = counter.count();
  }
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(fired, 128);
}

TEST(SimAllocTest, SendAndDeliveryAllocateOnlyTheBody) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(7),
              /*loss_probability=*/0.1);
  CountingNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);

  // Warm-up: intern the type, size the per-type stats vectors, grow the
  // event heap, and let make_shared reach its steady state.
  for (int i = 0; i < 32; ++i) net.Send(ida, idb, std::make_shared<PlainMsg>());
  sim.Run();

  // Bodies pre-built outside the counted window: the criterion is zero
  // allocations per send+delivery BEYOND the message body itself.
  std::vector<std::shared_ptr<const MessageBody>> bodies;
  for (int i = 0; i < 32; ++i) bodies.push_back(std::make_shared<PlainMsg>());

  size_t allocs;
  {
    CountedAllocs counter;
    for (auto& body : bodies) net.Send(ida, idb, std::move(body));
    sim.Run();
    allocs = counter.count();
  }
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(b.received, 0u);
}

TEST(SimAllocTest, RoutedEnvelopeCompositeTagIsAllocationFreeSteadyState) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(7));
  CountingNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);

  auto make_env = [] {
    auto env = std::make_shared<RoutedEnvelope>();
    env->payload = std::make_shared<PlainMsg>();
    return env;
  };
  // Warm-up interns the composite ("pgrid.routed/alloc.plain") and grows the
  // event heap to the burst's in-flight footprint.
  for (int i = 0; i < 16; ++i) net.Send(ida, idb, make_env());
  sim.Run();

  std::vector<std::shared_ptr<const MessageBody>> bodies;
  for (int i = 0; i < 16; ++i) bodies.push_back(make_env());
  size_t allocs;
  {
    CountedAllocs counter;
    for (auto& body : bodies) net.Send(ida, idb, std::move(body));
    sim.Run();
    allocs = counter.count();
  }
  EXPECT_EQ(allocs, 0u);
}

TEST(SimAllocTest, EventFnHeapFallbackForOversizedCaptures) {
  // Documents the boundary: captures beyond kInlineSize DO allocate (once).
  struct Big {
    char data[EventFn::kInlineSize + 1] = {};
    void operator()() {}
  };
  size_t allocs;
  {
    CountedAllocs counter;
    EventFn fn{Big{}};
    fn();
    allocs = counter.count();
  }
  EXPECT_EQ(allocs, 1u);

  struct Fits {
    char data[EventFn::kInlineSize] = {};
    void operator()() {}
  };
  {
    CountedAllocs counter;
    EventFn fn{Fits{}};
    fn();
    allocs = counter.count();
  }
  EXPECT_EQ(allocs, 0u);
}

}  // namespace
}  // namespace gridvine

#endif  // !GV_ALLOC_TEST_DISABLED
