#include "store/binding_codec.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TEST(BindingCodecTest, RoundTripSingleRow) {
  BindingSet row;
  row["x"] = Term::Uri("embl:A78712");
  row["y"] = Term::Literal("Aspergillus niger");
  auto parsed = ParseBindings(SerializeBindings({row}));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].at("x"), Term::Uri("embl:A78712"));
  EXPECT_EQ((*parsed)[0].at("y"), Term::Literal("Aspergillus niger"));
}

TEST(BindingCodecTest, RoundTripMultipleRows) {
  std::vector<BindingSet> rows;
  for (int i = 0; i < 5; ++i) {
    BindingSet row;
    row["v"] = Term::Uri("id" + std::to_string(i));
    rows.push_back(row);
  }
  auto parsed = ParseBindings(SerializeBindings(rows));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 5u);
  EXPECT_EQ((*parsed)[4].at("v").value(), "id4");
}

TEST(BindingCodecTest, EmptyListRoundTrips) {
  auto parsed = ParseBindings(SerializeBindings({}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(BindingCodecTest, SeparatorCharactersEscaped) {
  BindingSet row;
  row["x"] = Term::Literal(std::string("a\x1e") + "b\x1f" + "c\\d");
  auto parsed = ParseBindings(SerializeBindings({row}));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].at("x").value(),
            std::string("a\x1e") + "b\x1f" + "c\\d");
}

TEST(BindingCodecTest, VariableKindSurvives) {
  BindingSet row;
  row["x"] = Term::Var("inner");
  auto parsed = ParseBindings(SerializeBindings({row}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE((*parsed)[0].at("x").IsVariable());
}

TEST(BindingCodecTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseBindings("no-equals-sign").ok());
  EXPECT_FALSE(ParseBindings("x=Zvalue").ok());   // missing ':'
  EXPECT_FALSE(ParseBindings("x=Q:value").ok());  // bad kind tag
  EXPECT_FALSE(ParseBindings("x=U:v\\").ok());    // dangling escape
}

}  // namespace
}  // namespace gridvine
