#include "rdf/ntriples.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TEST(NTriplesTest, LineRoundTripLiteral) {
  Triple t(Term::Uri("ebi:P100001"), Term::Uri("EMBL#Organism"),
           Term::Literal("Aspergillus niger"));
  std::string line = ToNTriplesLine(t);
  EXPECT_EQ(line,
            "<ebi:P100001> <EMBL#Organism> \"Aspergillus niger\" .");
  auto parsed = ParseNTriplesLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, t);
}

TEST(NTriplesTest, LineRoundTripUriObject) {
  Triple t(Term::Uri("s"), Term::Uri("rdf:type"), Term::Uri("bio:Protein"));
  auto parsed = ParseNTriplesLine(ToNTriplesLine(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
  EXPECT_TRUE(parsed->object().IsUri());
}

TEST(NTriplesTest, EscapesRoundTrip) {
  Triple t(Term::Uri("s"), Term::Uri("p"),
           Term::Literal("line1\nline2\ttab \"quoted\" back\\slash"));
  auto parsed = ParseNTriplesLine(ToNTriplesLine(t));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->object().value(),
            "line1\nline2\ttab \"quoted\" back\\slash");
}

TEST(NTriplesTest, DocumentRoundTrip) {
  std::vector<Triple> triples;
  for (int i = 0; i < 10; ++i) {
    triples.emplace_back(Term::Uri("s" + std::to_string(i)), Term::Uri("p"),
                         Term::Literal("value " + std::to_string(i)));
  }
  auto parsed = ParseNTriples(ToNTriples(triples));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, triples);
}

TEST(NTriplesTest, CommentsAndBlankLinesSkipped) {
  auto parsed = ParseNTriples(
      "# header comment\n"
      "\n"
      "<s> <p> \"v\" .\n"
      "   \n"
      "<s2> <p> \"v2\" . # trailing comment\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(NTriplesTest, HashInsideUriIsNotAComment) {
  auto parsed = ParseNTriples("<s> <EMBL#Organism> \"v#notcomment\" .\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].predicate().value(), "EMBL#Organism");
  EXPECT_EQ((*parsed)[0].object().value(), "v#notcomment");
}

TEST(NTriplesTest, MalformedLinesReportLineNumber) {
  auto parsed = ParseNTriples(
      "<s> <p> \"v\" .\n"
      "this is not a triple\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, RejectsBadLines) {
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> \"v\"").ok());       // no dot
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> v .").ok());          // bare object
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> \"v .").ok());        // unterminated
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> \"v\\q\" .").ok());   // bad escape
  EXPECT_FALSE(ParseNTriplesLine("s <p> \"v\" .").ok());        // bare subject
  EXPECT_FALSE(ParseNTriplesLine("<> <p> \"v\" .").ok());       // empty URI
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> \"v\" . extra").ok());
}

}  // namespace
}  // namespace gridvine
