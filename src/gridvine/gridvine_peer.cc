#include "gridvine/gridvine_peer.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/mem_estimate.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "gridvine/query_frontend.h"
#include "query/exec/bind.h"
#include "query/planner.h"
#include "query/reformulation.h"
#include "store/binding_codec.h"

namespace gridvine {

namespace {

/// Record-type prefixes distinguishing non-triple values in overlay storage.
bool IsStructuredRecord(const std::string& value) {
  return StartsWith(value, "schema|") || StartsWith(value, "mapping|") ||
         StartsWith(value, "conn|");
}

/// Aggregates N update acknowledgements into one status callback: the first
/// error wins; OK once all arrive.
class AckAggregator : public std::enable_shared_from_this<AckAggregator> {
 public:
  AckAggregator(int expected, GridVinePeer::StatusCallback cb)
      : remaining_(expected), cb_(std::move(cb)) {}

  PGridPeer::UpdateCallback MakeCallback() {
    auto self = shared_from_this();
    return [self](Result<PGridPeer::UpdateOutcome> r) {
      if (!r.ok() && self->first_error_.ok()) self->first_error_ = r.status();
      if (--self->remaining_ == 0) {
        self->cb_(self->first_error_);
      }
    };
  }

  /// Creates an aggregator kept alive by its own callbacks: ownership lives
  /// only in the callback captures, so it is released once every callback
  /// has fired or been dropped (no self-referencing cycle).
  static std::shared_ptr<AckAggregator> Create(
      int expected, GridVinePeer::StatusCallback cb) {
    return std::make_shared<AckAggregator>(expected, std::move(cb));
  }

 private:
  int remaining_;
  Status first_error_;
  GridVinePeer::StatusCallback cb_;
};

}  // namespace

GridVinePeer::GridVinePeer(Simulator* sim, Network* network, Rng rng,
                           Options options,
                           PGridPeer::Options overlay_options)
    : sim_(sim),
      network_(network),
      rng_(rng),
      options_(options),
      hash_(options.key_depth) {
  overlay_options.key_depth = options.key_depth;
  overlay_ = std::make_unique<PGridPeer>(sim, network, rng_.Fork(),
                                         overlay_options);
  overlay_->SetExtensionHandler(
      [this](NodeId origin, std::shared_ptr<const MessageBody> payload,
             int hops) { OnExtensionMessage(origin, std::move(payload), hops); });
  overlay_->SetStorageListener(
      [this](UpdateOp op, const Key& key, const std::string& value) {
        OnStorageChange(op, key, value);
      });
  if (options_.cache.enabled) {
    ExtentCache::Options copts;
    copts.max_entries = options_.cache.max_entries;
    copts.max_bytes = options_.cache.max_bytes;
    cache_ = std::make_unique<ExtentCache>(copts);
  }
  if (options_.stats.enabled) {
    StatsCache::Options sopts;
    sopts.ttl = options_.stats.ttl;
    stats_cache_ = std::make_unique<StatsCache>(sopts);
  }
  frontend_ = std::make_unique<QueryFrontend>(sim, this);
}

GridVinePeer::~GridVinePeer() = default;

// --- Storage mirroring --------------------------------------------------------

void GridVinePeer::OnStorageChange(UpdateOp op, const Key& /*key*/,
                                   const std::string& value) {
  if (IsStructuredRecord(value)) return;
  auto triple = Triple::Parse(value);
  if (!triple.ok()) return;  // unknown record type: not DB_p material
  if (op == UpdateOp::kInsert) {
    // A triple indexed three times may land on this peer up to three times;
    // TripleStore::Insert is idempotent so DB_p stays duplicate-free.
    local_db_.Insert(*triple).ok();
  } else {
    local_db_.Erase(*triple);
  }
}

// --- Mediation-layer updates ---------------------------------------------------

void GridVinePeer::InsertTriple(const Triple& triple, StatusCallback cb) {
  Status valid = triple.Validate();
  if (!valid.ok()) {
    cb(valid);
    return;
  }
  std::string value = triple.Serialize();
  auto agg = AckAggregator::Create(3, std::move(cb));
  // Update(t) = Update(Hash(s), t), Update(Hash(p), t), Update(Hash(o), t).
  overlay_->Update(KeyFor(triple.subject().value()), value,
                   agg->MakeCallback());
  overlay_->Update(KeyFor(triple.predicate().value()), value,
                   agg->MakeCallback());
  overlay_->Update(KeyFor(triple.object().value()), value,
                   agg->MakeCallback());
}

void GridVinePeer::InsertTriples(const std::vector<Triple>& triples,
                                 StatusCallback cb) {
  if (triples.empty()) {
    cb(Status::OK());
    return;
  }
  for (const Triple& t : triples) {
    Status valid = t.Validate();
    if (!valid.ok()) {
      cb(valid);
      return;
    }
  }
  auto agg = AckAggregator::Create(int(triples.size()) * 3, std::move(cb));
  for (const Triple& t : triples) {
    std::string value = t.Serialize();
    overlay_->Update(KeyFor(t.subject().value()), value, agg->MakeCallback());
    overlay_->Update(KeyFor(t.predicate().value()), value,
                     agg->MakeCallback());
    overlay_->Update(KeyFor(t.object().value()), value, agg->MakeCallback());
  }
}

void GridVinePeer::RemoveTriple(const Triple& triple, StatusCallback cb) {
  std::string value = triple.Serialize();
  auto agg = AckAggregator::Create(3, std::move(cb));
  overlay_->Remove(KeyFor(triple.subject().value()), value,
                   agg->MakeCallback());
  overlay_->Remove(KeyFor(triple.predicate().value()), value,
                   agg->MakeCallback());
  overlay_->Remove(KeyFor(triple.object().value()), value,
                   agg->MakeCallback());
}

void GridVinePeer::InsertSchema(const Schema& schema, StatusCallback cb) {
  Status valid = schema.Validate();
  if (!valid.ok()) {
    cb(valid);
    return;
  }
  overlay_->Update(KeyFor(schema.name()), schema.Serialize(),
                   [cb](Result<PGridPeer::UpdateOutcome> r) {
                     cb(r.ok() ? Status::OK() : r.status());
                   });
}

void GridVinePeer::UpsertSchema(const Schema& schema, StatusCallback cb) {
  Status valid = schema.Validate();
  if (!valid.ok()) {
    cb(valid);
    return;
  }
  // Remove stale serializations of this schema name first: FetchSchema
  // returns the first matching record, so an evolved definition inserted
  // alongside the old one would never be seen.
  std::string fresh = schema.Serialize();
  overlay_->Retrieve(
      KeyFor(schema.name()),
      [this, schema, fresh, cb](Result<PGridPeer::LookupResult> r) {
        std::vector<std::string> stale;
        if (r.ok()) {
          for (const auto& value : r->values) {
            if (!StartsWith(value, "schema|")) continue;
            auto parsed = Schema::Parse(value);
            if (parsed.ok() && parsed->name() == schema.name() &&
                value != fresh) {
              stale.push_back(value);
            }
          }
        }
        auto agg = AckAggregator::Create(int(stale.size()) + 1, cb);
        for (const auto& value : stale) {
          overlay_->Remove(KeyFor(schema.name()), value, agg->MakeCallback());
        }
        InsertSchema(schema, [agg](Status s) {
          agg->MakeCallback()(
              s.ok()
                  ? Result<PGridPeer::UpdateOutcome>(PGridPeer::UpdateOutcome{})
                  : Result<PGridPeer::UpdateOutcome>(s));
        });
      });
}

namespace {

/// A mapping must be discoverable from every schema that can traverse it:
/// bidirectional equivalences reformulate both ways, and subsumptions are
/// always traversable backwards (the sound specialization direction), so
/// both kinds are indexed under the target schema's key space too.
bool StoredAtBothKeySpaces(const SchemaMapping& mapping) {
  return mapping.bidirectional() ||
         mapping.type() == MappingType::kSubsumption;
}

}  // namespace

void GridVinePeer::InsertMapping(const SchemaMapping& mapping,
                                 StatusCallback cb) {
  std::string value = mapping.Serialize();
  int copies = StoredAtBothKeySpaces(mapping) ? 2 : 1;
  auto agg = AckAggregator::Create(copies, std::move(cb));
  overlay_->Update(KeyFor(mapping.source_schema()), value,
                   agg->MakeCallback());
  if (StoredAtBothKeySpaces(mapping)) {
    overlay_->Update(KeyFor(mapping.target_schema()), value,
                     agg->MakeCallback());
  }
}

void GridVinePeer::UpsertMapping(const SchemaMapping& mapping,
                                 StatusCallback cb) {
  // Fetch current records at the source key space, remove any with the same
  // id, then insert the new state. (Bidirectional copies are refreshed too.)
  FetchMappingsFor(
      mapping.source_schema(),
      [this, mapping, cb](Result<std::vector<SchemaMapping>> existing) {
        std::vector<std::string> stale;
        if (existing.ok()) {
          for (const auto& m : *existing) {
            if (m.id() == mapping.id() &&
                m.Serialize() != mapping.Serialize()) {
              stale.push_back(m.Serialize());
            }
          }
        }
        int ops = int(stale.size()) * (StoredAtBothKeySpaces(mapping) ? 2 : 1);
        auto agg = AckAggregator::Create(ops + 1, cb);
        for (const auto& value : stale) {
          overlay_->Remove(KeyFor(mapping.source_schema()), value,
                           agg->MakeCallback());
          if (StoredAtBothKeySpaces(mapping)) {
            overlay_->Remove(KeyFor(mapping.target_schema()), value,
                             agg->MakeCallback());
          }
        }
        InsertMapping(mapping, [agg](Status s) {
          agg->MakeCallback()(
              s.ok() ? Result<PGridPeer::UpdateOutcome>(
                           PGridPeer::UpdateOutcome{})
                     : Result<PGridPeer::UpdateOutcome>(s));
        });
      });
}

// --- Mediation-layer lookups ----------------------------------------------------

void GridVinePeer::FetchSchema(const std::string& name,
                               std::function<void(Result<Schema>)> cb) {
  overlay_->Retrieve(
      KeyFor(name), [name, cb](Result<PGridPeer::LookupResult> r) {
        if (!r.ok()) {
          cb(r.status());
          return;
        }
        for (const auto& value : r->values) {
          if (!StartsWith(value, "schema|")) continue;
          auto schema = Schema::Parse(value);
          if (schema.ok() && schema->name() == name) {
            cb(std::move(schema));
            return;
          }
        }
        cb(Status::NotFound("schema not in network: " + name));
      });
}

void GridVinePeer::FetchMappingsFor(
    const std::string& schema,
    std::function<void(Result<std::vector<SchemaMapping>>)> cb) {
  overlay_->Retrieve(
      KeyFor(schema), [cb](Result<PGridPeer::LookupResult> r) {
        if (!r.ok()) {
          cb(r.status());
          return;
        }
        std::vector<SchemaMapping> mappings;
        for (const auto& value : r->values) {
          if (!StartsWith(value, "mapping|")) continue;
          auto m = SchemaMapping::Parse(value);
          if (m.ok()) mappings.push_back(std::move(m).value());
        }
        cb(std::move(mappings));
      });
}

// --- Connectivity registry ------------------------------------------------------

void GridVinePeer::PublishDegree(const std::string& domain,
                                 const std::string& schema, int in_degree,
                                 int out_degree, StatusCallback cb) {
  std::string record = "conn|" + schema + "|" + std::to_string(in_degree) +
                       "|" + std::to_string(out_degree) + "|" +
                       std::to_string(next_version_++);
  auto prev_key = std::make_pair(domain, schema);
  auto it = published_degrees_.find(prev_key);
  int ops = it != published_degrees_.end() ? 2 : 1;
  auto agg = AckAggregator::Create(ops, std::move(cb));
  if (it != published_degrees_.end()) {
    overlay_->Remove(KeyFor(domain), it->second, agg->MakeCallback());
  }
  overlay_->Update(KeyFor(domain), record, agg->MakeCallback());
  published_degrees_[prev_key] = record;
}

void GridVinePeer::FetchDomainDegrees(
    const std::string& domain,
    std::function<void(Result<std::vector<DegreeRecord>>)> cb) {
  overlay_->Retrieve(
      KeyFor(domain), [cb](Result<PGridPeer::LookupResult> r) {
        if (!r.ok()) {
          cb(r.status());
          return;
        }
        // Keep the latest version per schema.
        std::map<std::string, DegreeRecord> latest;
        for (const auto& value : r->values) {
          if (!StartsWith(value, "conn|")) continue;
          auto parts = Split(value, '|');
          if (parts.size() != 5) continue;
          DegreeRecord rec;
          rec.schema = parts[1];
          rec.in_degree = std::atoi(parts[2].c_str());
          rec.out_degree = std::atoi(parts[3].c_str());
          rec.version = std::strtoull(parts[4].c_str(), nullptr, 10);
          auto it = latest.find(rec.schema);
          if (it == latest.end() || it->second.version < rec.version) {
            latest[rec.schema] = rec;
          }
        }
        std::vector<DegreeRecord> out;
        out.reserve(latest.size());
        for (auto& [_, rec] : latest) out.push_back(rec);
        cb(std::move(out));
      });
}

// --- Observability --------------------------------------------------------------

Tracer* GridVinePeer::LiveTracer() const {
  Tracer* tr = network_->tracer();
  return (tr != nullptr && tr->enabled()) ? tr : nullptr;
}

// Picks the span a responder-side marker should attach to. The ambient
// delivery ctx is the request's own flight span only when it belongs to the
// same trace as the ctx carried on the request; then it is the deeper, better
// parent. Otherwise the request was handed over synchronously while some
// unrelated delivery (e.g. the mapping-fetch response that triggered a
// reformulation) was ambient, and the carried ctx is authoritative.
TraceCtx GridVinePeer::ResponderParent(const TraceCtx& carried) const {
  TraceCtx ambient = network_->ambient_ctx();
  if (ambient.valid() &&
      (!carried.valid() || ambient.trace_id == carried.trace_id)) {
    return ambient;
  }
  return carried;
}

void GridVinePeer::PublishMetrics(MetricsRegistry* metrics) const {
  metrics->Counter("gv.queries_issued") += counters_.queries_issued;
  metrics->Counter("gv.queries_answered") += counters_.queries_answered;
  metrics->Counter("gv.reformulations_performed") +=
      counters_.reformulations_performed;
  metrics->Counter("gv.bound_scans_answered") +=
      counters_.bound_scans_answered;
  metrics->Counter("gv.result_rows_sent") += counters_.result_rows_sent;
  metrics->Counter("gv.local_db_triples") += local_db_.size();
  metrics->Gauge("gv.pending_queries") += double(pending_queries_.size());
  metrics->Gauge("gv.active_execs") += double(active_execs_.size());
  if (cache_) {
    const ExtentCache::Stats& cs = cache_->stats();
    metrics->Counter("gv.cache.hits") += cs.hits;
    metrics->Counter("gv.cache.misses") += cs.misses;
    metrics->Counter("gv.cache.evictions") += cs.evictions;
    metrics->Counter("gv.cache.invalidations") += cs.invalidations;
    metrics->Counter("gv.cache.negative_hits") += cs.negative_hits;
    metrics->Counter("gv.cache.entries") += cache_->entries();
    metrics->Counter("gv.cache.bytes") += cache_->bytes();
  }
  if (stats_cache_) {
    const StatsCache::Stats& ss = stats_cache_->stats();
    metrics->Counter("gv.stats.hits") += ss.hits;
    metrics->Counter("gv.stats.misses") += ss.misses;
    metrics->Counter("gv.stats.refreshes") += ss.refreshes;
    metrics->Counter("gv.stats.observations") += ss.observations;
    metrics->Counter("gv.stats.entries") += stats_cache_->entries();
  }
  if (stats_cache_ || counters_.stats_served > 0) {
    metrics->Counter("gv.stats.fetches") += counters_.stats_fetches;
    metrics->Counter("gv.stats.served") += counters_.stats_served;
    metrics->Counter("gv.stats.sketch_rebuilds") += counters_.sketch_rebuilds;
  }
  if (frontend_) {
    QueryFrontend::Stats fs = frontend_->stats();
    metrics->Counter("gv.frontend.submitted") += fs.submitted;
    metrics->Counter("gv.frontend.completed") += fs.completed;
    metrics->Counter("gv.frontend.shed") += fs.shed;
    metrics->Counter("gv.frontend.max_queue_depth") =
        std::max(metrics->Counter("gv.frontend.max_queue_depth"),
                 fs.max_queue_depth);
    metrics->Gauge("gv.frontend.active") += double(fs.active);
    metrics->Gauge("gv.frontend.queued") += double(fs.queued);
  }
  metrics->Counter("gv.batch.items") += counters_.batch_items;
  metrics->Counter("gv.batch.flushes") += counters_.batch_flushes;
  metrics->Counter("gv.batch.answered") += counters_.batches_answered;
}

// --- Query engine ---------------------------------------------------------------

uint64_t GridVinePeer::StartQuery(
    const TriplePatternQuery& query, const QueryOptions& options,
    std::function<void(PendingQuery&)> on_finish) {
  ++counters_.queries_issued;
  uint64_t qid = (uint64_t(id()) << 32) | next_query_id_++;
  PendingQuery p;
  p.query = query;
  p.options = options;
  p.started = sim_->Now();
  p.on_finish = std::move(on_finish);
  p.visited.insert(query.SchemaName());
  if (Tracer* tr = LiveTracer()) {
    // Parent preference: an explicit caller span (the conjunctive executor's
    // operator), else the ambient delivery ctx, else a fresh trace root.
    TraceCtx parent = options.trace_parent.valid() ? options.trace_parent
                                                   : network_->ambient_ctx();
    p.span = tr->StartSpan("op.search", parent);
    tr->Annotate(p.span, "schema", query.SchemaName());
  }
  pending_queries_.emplace(qid, std::move(p));

  int max_hops = options.max_hops >= 0 ? options.max_hops
                                       : options_.max_reformulation_hops;
  SimTime timeout =
      options.timeout > 0 ? options.timeout : options_.query_timeout;

  PendingQuery& pq = pending_queries_.at(qid);
  // One unit for the initial dispatch plus a setup guard: when the origin is
  // itself responsible for the query key, the dispatch can answer
  // synchronously, and without the guard the branch count would hit zero and
  // close the query before IterativeExpand gets to register its mapping fetch.
  pq.outstanding = 2;
  int ttl = options.reformulate &&
                    options.mode == ReformulationMode::kRecursive
                ? max_hops
                : 0;
  DispatchQuery(qid, query, id(), options.mode, ttl, {query.SchemaName()},
                0, 1.0, options.sound_only);

  if (options.reformulate && options.mode == ReformulationMode::kIterative) {
    IterativeExpand(qid, query, {query.SchemaName()}, 0, 0, 1.0);
  }
  auto again = pending_queries_.find(qid);
  if (again != pending_queries_.end() && !again->second.closed) {
    --again->second.outstanding;  // release the setup guard
    MaybeFinishIterative(qid);
  }

  sim_->Schedule(timeout, [this, qid] { FinishQuery(qid); });
  return qid;
}

void GridVinePeer::SearchFor(const TriplePatternQuery& query,
                             const QueryOptions& options, QueryCallback cb) {
  Status valid = query.Validate();
  if (!valid.ok()) {
    QueryResult res;
    res.status = valid;
    cb(std::move(res));
    return;
  }
  std::string var = query.distinguished_var();
  StartQuery(query, options, [this, var, cb](PendingQuery& p) {
    QueryResult res;
    res.status = Status::OK();
    res.schemas_answered = p.schemas_answered.size();
    res.reformulations = p.reformulations;
    res.latency = sim_->Now() - p.started;
    res.first_result_latency = p.first_result;
    res.trace_id = p.span.trace_id;
    // Deduplicate by (schema, value), both interned to compact ids — no
    // per-item string-pair keys; earliest arrival wins. Items keep their
    // first-seen slot, so insertion order (hence the stable sort below) is
    // deterministic across runs and platforms.
    std::unordered_map<std::string, uint32_t> interned;
    auto intern = [&interned](const std::string& s) {
      auto [slot, fresh] =
          interned.emplace(s, static_cast<uint32_t>(interned.size()));
      (void)fresh;
      return slot->second;
    };
    std::unordered_map<uint64_t, size_t> index;
    for (const RowBatch& batch : p.batches) {
      for (const BindingSet& row : batch.rows) {
        auto it = row.find(var);
        if (it == row.end()) continue;
        uint64_t key = (uint64_t(intern(batch.schema)) << 32) |
                       intern(it->second.value());
        auto found = index.find(key);
        if (found != index.end() &&
            res.items[found->second].arrival <= batch.arrival) {
          continue;
        }
        ResultItem item;
        item.value = it->second;
        item.schema = batch.schema;
        item.mapping_path_len = batch.mapping_path_len;
        item.confidence = batch.confidence;
        item.arrival = batch.arrival;
        if (found != index.end()) {
          res.items[found->second] = std::move(item);
        } else {
          index.emplace(key, res.items.size());
          res.items.push_back(std::move(item));
        }
      }
    }
    std::stable_sort(res.items.begin(), res.items.end(),
                     [](const ResultItem& a, const ResultItem& b) {
                       return a.arrival < b.arrival;
                     });
    cb(std::move(res));
  });
}

void GridVinePeer::DispatchQuery(uint64_t qid, const TriplePatternQuery& query,
                                 NodeId reply_to, ReformulationMode mode,
                                 int ttl, std::vector<std::string> visited,
                                 int path_len, double confidence,
                                 bool sound_only) {
  auto routing = query.pattern().RoutingConstant();
  auto range_prefix = query.pattern().ObjectRangePrefix();
  // Routing-policy override (ablation): only the issuer's own dispatch.
  if (reply_to == id()) {
    auto it = pending_queries_.find(qid);
    if (it != pending_queries_.end() &&
        it->second.options.routing_position.has_value() &&
        query.pattern().IsExactConstant(
            *it->second.options.routing_position)) {
      routing = it->second.options.routing_position;
    }
  }
  if (!routing.has_value() && !range_prefix.has_value()) {
    // Cannot route an all-variable pattern: the branch dies silently; the
    // origin's timeout (or outstanding counter) handles it.
    auto it = pending_queries_.find(qid);
    if (it != pending_queries_.end() && reply_to == id()) {
      --it->second.outstanding;
      MaybeFinishIterative(qid);
    }
    return;
  }
  auto req = std::make_shared<QueryRequest>();
  req->query_id = qid;
  req->query = query.Serialize();
  req->reply_to = reply_to;
  req->mode = mode;
  req->ttl = ttl;
  req->visited_schemas = std::move(visited);
  req->mapping_path_len = path_len;
  req->confidence = confidence;
  req->sound_only = sound_only;
  if (routing.has_value()) {
    Key route_key = KeyFor(query.pattern().at(*routing).value());
    auto it2 = pending_queries_.find(qid);
    if (reply_to == id() && it2 != pending_queries_.end() &&
        !it2->second.closed) {
      // Issuer-side branch: track it and hand it to the retrying layer
      // instead of a single fire-and-forget send. The request object is
      // retained so a retry re-routes the identical payload.
      uint64_t did = next_dispatch_id_++;
      req->dispatch_id = did;
      OpenDispatch od{req, route_key, 1, TraceCtx{}};
      if (Tracer* tr = LiveTracer()) {
        od.span = tr->StartSpan("op.dispatch", it2->second.span);
        req->trace_ctx = od.span;
      }
      it2->second.open_dispatches.emplace(did, std::move(od));
      // Route may answer synchronously (origin responsible): emplace first.
      // Iterative issuer-tracked dispatches are the batchable kind (a
      // recursive dispatch needs destination-side reformulation, which the
      // batch handler does not perform). The retry timer is armed either
      // way — a retry re-routes the retained request individually.
      if (options_.batch.enabled && mode == ReformulationMode::kIterative) {
        EnqueueBatch(route_key, req);
      } else {
        overlay_->Route(route_key, req);
      }
      ArmDispatchTimer(qid, did, 1);
      return;
    }
    overlay_->Route(route_key, std::move(req));
    return;
  }
  // No exact constant, but a prefix-constrained literal ("Asp%..."): the
  // order-preserving hash maps the value range to a key-space subtree;
  // multicast the query there. The number of responders is unknown, so the
  // origin must collect until its window closes.
  auto it = pending_queries_.find(qid);
  if (it != pending_queries_.end() && reply_to == id()) {
    it->second.used_range_dispatch = true;
    // Range branches are untracked (unknown responder count); their flights
    // parent directly on the query span.
    req->trace_ctx = it->second.span;
  }
  overlay_->RouteRange(hash_.SubtreeFor(*range_prefix), std::move(req));
}

void GridVinePeer::IterativeExpand(uint64_t qid,
                                   const TriplePatternQuery& query,
                                   std::set<std::string> /*visited*/,
                                   int depth, int path_len,
                                   double confidence) {
  auto it = pending_queries_.find(qid);
  if (it == pending_queries_.end() || it->second.closed) return;
  int max_hops = it->second.options.max_hops >= 0
                     ? it->second.options.max_hops
                     : options_.max_reformulation_hops;
  if (depth >= max_hops) return;

  ++it->second.outstanding;  // the mapping fetch itself
  FetchMappingsFor(
      query.SchemaName(),
      [this, qid, query, depth, path_len,
       confidence](Result<std::vector<SchemaMapping>> fetched) {
        auto it2 = pending_queries_.find(qid);
        if (it2 == pending_queries_.end() || it2->second.closed) return;
        PendingQuery& p = it2->second;
        --p.outstanding;
        if (fetched.ok()) {
          std::string schema = query.SchemaName();
          for (const SchemaMapping& m : OrientMappingsFrom(
                   schema, *fetched, p.options.sound_only)) {
            if (p.visited.count(m.target_schema())) continue;
            auto reformed = Reformulate(query, m);
            if (!reformed.ok()) continue;
            p.visited.insert(m.target_schema());
            ++p.reformulations;
            ++p.outstanding;
            DispatchQuery(qid, *reformed, id(), ReformulationMode::kIterative,
                          0, {}, path_len + 1, confidence * m.confidence(),
                          p.options.sound_only);
            IterativeExpand(qid, *reformed, {}, depth + 1, path_len + 1,
                            confidence * m.confidence());
          }
        }
        MaybeFinishIterative(qid);
      });
}

void GridVinePeer::ArmDispatchTimer(uint64_t qid, uint64_t did, int attempt) {
  SimTime timeout = options_.query_retry.TimeoutFor(attempt, &rng_);
  // Captured for the retroactive backoff span: recomputing it at the fire as
  // now - timeout is off by floating-point rounding, which can push the
  // interval's start before its parent's.
  SimTime armed_at = sim_->Now();
  sim_->Schedule(timeout, [this, qid, did, attempt, armed_at] {
    auto it = pending_queries_.find(qid);
    if (it == pending_queries_.end() || it->second.closed) return;
    auto d = it->second.open_dispatches.find(did);
    // Answered in the meantime, or a newer attempt owns the timer.
    if (d == it->second.open_dispatches.end() ||
        d->second.attempts != attempt) {
      return;
    }
    if (options_.query_retry.Exhausted(d->second.attempts)) {
      // Branch written off: close it so iterative completion need not wait
      // for the global query timeout.
      CloseDispatch(it->second, qid, did);
      return;
    }
    ++d->second.attempts;
    int next_attempt = d->second.attempts;
    Key route_key = d->second.route_key;
    std::shared_ptr<QueryRequest> req = d->second.req;
    if (Tracer* tr = LiveTracer()) {
      if (d->second.span.valid()) {
        tr->Instant("op.retry", d->second.span);
        // Retroactive: the whole timeout window just spent waiting before
        // this retry — what the critical-path profiler books as backoff.
        tr->Interval("op.backoff", d->second.span, armed_at, sim_->Now());
      }
    }
    // Route can resolve synchronously and erase the dispatch; do not touch
    // `d` past this point.
    overlay_->Route(route_key, std::move(req));
    ArmDispatchTimer(qid, did, next_attempt);
  });
}

void GridVinePeer::CloseDispatch(PendingQuery& p, uint64_t qid, uint64_t did) {
  auto od = p.open_dispatches.find(did);
  if (od != p.open_dispatches.end() && od->second.span.valid()) {
    if (Tracer* tr = LiveTracer()) {
      tr->Annotate(od->second.span, "attempts", double(od->second.attempts));
      tr->EndSpan(od->second.span);
    }
  }
  p.open_dispatches.erase(did);
  bool iterative = !p.options.reformulate ||
                   p.options.mode == ReformulationMode::kIterative;
  if (iterative && !p.used_range_dispatch) {
    --p.outstanding;
    MaybeFinishIterative(qid);
  }
}

void GridVinePeer::MaybeFinishIterative(uint64_t qid) {
  auto it = pending_queries_.find(qid);
  if (it == pending_queries_.end() || it->second.closed) return;
  PendingQuery& p = it->second;
  if (p.used_range_dispatch) return;  // unknown responder count: wait out
  bool iterative = !p.options.reformulate ||
                   p.options.mode == ReformulationMode::kIterative;
  if (iterative && p.outstanding <= 0) FinishQuery(qid);
}

void GridVinePeer::FinishQuery(uint64_t qid) {
  auto it = pending_queries_.find(qid);
  if (it == pending_queries_.end() || it->second.closed) return;
  it->second.closed = true;
  PendingQuery p = std::move(it->second);
  pending_queries_.erase(it);
  if (p.span.valid()) {
    if (Tracer* tr = LiveTracer()) {
      // Branches still open at the timeout end with the query.
      for (auto& [did, od] : p.open_dispatches) {
        if (!od.span.valid()) continue;
        tr->Annotate(od.span, "timed_out", 1.0);
        tr->EndSpan(od.span);
      }
      tr->Annotate(p.span, "reformulations", double(p.reformulations));
      tr->Annotate(p.span, "batches", double(p.batches.size()));
      tr->Annotate(p.span, "schemas", double(p.schemas_answered.size()));
      tr->EndSpan(p.span);
    }
  }
  p.on_finish(p);
}

// --- Message handling -------------------------------------------------------------

void GridVinePeer::OnExtensionMessage(
    NodeId /*origin*/, std::shared_ptr<const MessageBody> payload,
    int /*hops*/) {
  if (auto* req = dynamic_cast<const QueryRequest*>(payload.get())) {
    HandleQueryRequest(*req);
  } else if (auto* resp = dynamic_cast<const QueryResponse*>(payload.get())) {
    HandleQueryResponse(*resp);
  } else if (auto* breq =
                 dynamic_cast<const BoundScanRequest*>(payload.get())) {
    HandleBoundScanRequest(*breq);
  } else if (auto* bresp =
                 dynamic_cast<const BoundScanResponse*>(payload.get())) {
    HandleBoundScanResponse(*bresp);
  } else if (auto* batch = dynamic_cast<const BatchEnvelope*>(payload.get())) {
    HandleBatchEnvelope(*batch);
  } else if (auto* sreq = dynamic_cast<const StatsRequest*>(payload.get())) {
    HandleStatsRequest(*sreq);
  } else if (auto* srec = dynamic_cast<const StatsRecord*>(payload.get())) {
    HandleStatsRecord(*srec);
  } else {
    GV_CLOG("gridvine", Warning) << "gridvine peer " << id()
                                 << ": unknown payload "
                                 << payload->TypeTag().name();
  }
}

void GridVinePeer::HandleQueryRequest(const QueryRequest& req) {
  auto query = TriplePatternQuery::Parse(req.query);
  if (!query.ok()) {
    GV_CLOG("gridvine", Warning) << "bad query payload: " << query.status();
    return;
  }
  std::string schema = query->SchemaName();

  if (req.mode == ReformulationMode::kRecursive) {
    // A schema is processed once per query at any given peer.
    auto seen_key = std::make_pair(req.query_id, schema);
    if (recursive_seen_.count(seen_key)) return;
    recursive_seen_.insert(seen_key);
  }

  ++counters_.queries_answered;
  // The answer depends only on the pattern (rows carry the pattern's
  // variable names) and the local store, so the extent cache keys on the
  // pattern serialization alone — "q|" separates full scans from bound
  // scans over the same pattern.
  std::string payload;
  size_t row_count = 0;
  bool cache_hit = false;
  if (cache_ != nullptr) {
    std::string pkey = "q|" + query->pattern().Serialize();
    if (const ExtentCache::Extent* hit =
            cache_->Lookup(pkey, {}, local_db_.version())) {
      payload = hit->rows;
      row_count = hit->row_count;
      cache_hit = true;
    } else {
      auto rows = local_db_.MatchPattern(query->pattern());
      row_count = rows.size();
      payload = SerializeBindings(rows);
      cache_->Insert(pkey, {}, local_db_.version(),
                     ExtentCache::Extent{payload, {}, row_count});
    }
  } else {
    auto rows = local_db_.MatchPattern(query->pattern());
    row_count = rows.size();
    payload = SerializeBindings(rows);
  }
  counters_.result_rows_sent += row_count;
  if (Tracer* tr = LiveTracer()) {
    // Marks the answering peer inside the request flight's subtree; the
    // response itself chains under the same flight via the ambient ctx.
    TraceCtx mark = tr->Instant("op.answer", ResponderParent(req.trace_ctx));
    tr->Annotate(mark, "schema", schema);
    tr->Annotate(mark, "rows", double(row_count));
    if (cache_hit) tr->Annotate(mark, "cached", 1.0);
  }
  auto resp = std::make_shared<QueryResponse>();
  resp->query_id = req.query_id;
  resp->dispatch_id = req.dispatch_id;
  resp->schema = schema;
  resp->rows = std::move(payload);
  resp->mapping_path_len = req.mapping_path_len;
  resp->confidence = req.confidence;
  resp->responder = id();
  SendResponse(req.reply_to, std::move(resp),
               ScanServeCost(cache_hit, row_count));

  if (req.mode != ReformulationMode::kRecursive || req.ttl <= 0) return;

  // Recursive mode: this peer reformulates and forwards on behalf of the
  // issuer (paper Section 4, "successive reformulations are delegated to
  // intermediate peers").
  TriplePatternQuery q = std::move(query).value();
  auto visited = req.visited_schemas;
  if (std::find(visited.begin(), visited.end(), schema) == visited.end()) {
    visited.push_back(schema);
  }
  uint64_t qid = req.query_id;
  NodeId reply_to = req.reply_to;
  int ttl = req.ttl;
  int path_len = req.mapping_path_len;
  double confidence = req.confidence;
  bool sound_only = req.sound_only;
  FetchMappingsFor(
      schema, [this, q, visited, qid, reply_to, ttl, path_len, confidence,
               sound_only](Result<std::vector<SchemaMapping>> fetched) {
        if (!fetched.ok()) return;
        std::string schema = q.SchemaName();
        for (const SchemaMapping& m :
             OrientMappingsFrom(schema, *fetched, sound_only)) {
          if (std::find(visited.begin(), visited.end(),
                        m.target_schema()) != visited.end()) {
            continue;
          }
          auto reformed = Reformulate(q, m);
          if (!reformed.ok()) continue;
          ++counters_.reformulations_performed;
          auto next_visited = visited;
          next_visited.push_back(m.target_schema());
          DispatchQuery(qid, *reformed, reply_to,
                        ReformulationMode::kRecursive, ttl - 1, next_visited,
                        path_len + 1, confidence * m.confidence(),
                        sound_only);
        }
      });
}

void GridVinePeer::HandleQueryResponse(const QueryResponse& resp) {
  auto it = pending_queries_.find(resp.query_id);
  if (it == pending_queries_.end() || it->second.closed) return;
  PendingQuery& p = it->second;

  // A response for a tracked branch that is no longer open is a duplicate
  // (network duplication, or both the original and a retry answering):
  // every branch is accounted exactly once, so drop it here.
  if (resp.dispatch_id != 0 &&
      p.open_dispatches.find(resp.dispatch_id) == p.open_dispatches.end()) {
    return;
  }

  auto rows = ParseBindings(resp.rows);
  if (rows.ok()) {
    RowBatch batch;
    batch.schema = resp.schema;
    batch.mapping_path_len = resp.mapping_path_len;
    batch.confidence = resp.confidence;
    batch.arrival = sim_->Now() - p.started;
    batch.rows = std::move(rows).value();
    if (!batch.rows.empty() && p.first_result < 0) {
      p.first_result = batch.arrival;
    }
    p.schemas_answered.insert(resp.schema);
    if (p.options.on_answer) {
      p.options.on_answer(batch.schema, batch.rows.size(), batch.arrival);
    }
    p.batches.push_back(std::move(batch));
  }

  if (resp.dispatch_id != 0) {
    // CloseDispatch handles the outstanding-branch accounting (and may
    // complete the query).
    CloseDispatch(p, resp.query_id, resp.dispatch_id);
  } else {
    bool iterative = !p.options.reformulate ||
                     p.options.mode == ReformulationMode::kIterative;
    if (iterative && !p.used_range_dispatch) {
      --p.outstanding;
      MaybeFinishIterative(resp.query_id);
    }
  }
}

// --- Conjunctive queries ------------------------------------------------------------

/// GridVinePeer's QueryBackend: full-extent scans ride the existing
/// single-pattern engine (reliable dispatch, reformulation); bind-joins and
/// existence checks ride the bound-scan transport below.
class GridVinePeer::ExecBackend : public QueryBackend {
 public:
  ExecBackend(GridVinePeer* peer, uint64_t exec_id, QueryOptions options)
      : peer_(peer), exec_id_(exec_id), options_(std::move(options)) {}

  /// The executor hands us its current operator span; sub-queries and
  /// bound-scan branches parent there.
  void SetCallCtx(TraceCtx ctx) override { call_ctx_ = ctx; }

  void Scan(const TriplePattern& pattern, ScanCallback cb) override {
    auto vars = pattern.Variables();
    if (vars.empty()) {
      // The planner routes constant patterns to Exists, never here.
      cb({Status::Internal("full scan of a constant pattern"), {}});
      return;
    }
    // Any variable serves as the distinguished one; rows carry all bindings.
    TriplePatternQuery sub(vars[0], pattern);
    QueryOptions sub_options = options_;
    if (call_ctx_.valid()) sub_options.trace_parent = call_ctx_;
    peer_->StartQuery(sub, sub_options, [cb](PendingQuery& p) {
      ScanResult r;
      r.status = Status::OK();
      // Union the batches' rows, deduplicated with interned keys.
      BindingDeduper dd;
      for (const RowBatch& batch : p.batches) {
        for (const BindingSet& row : batch.rows) {
          if (dd.Insert(row)) r.rows.push_back(row);
        }
      }
      cb(std::move(r));
    });
  }

  void BoundScan(const TriplePattern& pattern, std::vector<BindingSet> probes,
                 BoundScanCallback cb) override {
    peer_->StartBoundScan(exec_id_, pattern, std::move(probes), std::move(cb),
                          call_ctx_);
  }

  void Exists(const TriplePattern& pattern,
              std::function<void(Result<bool>)> cb) override {
    // One unconstrained probe against the fully-constant pattern, routed
    // (by StartBoundScan) to the pattern's subject key: the destination
    // answers with an empty-or-singleton row set.
    std::vector<BindingSet> probes(1);
    peer_->StartBoundScan(
        exec_id_, pattern, std::move(probes),
        [cb](BoundScanResult r) {
          if (!r.status.ok()) {
            cb(std::move(r.status));
            return;
          }
          cb(!r.rows.empty());
        },
        call_ctx_);
  }

 private:
  GridVinePeer* peer_;
  uint64_t exec_id_;
  QueryOptions options_;
  TraceCtx call_ctx_;
};

void GridVinePeer::SearchForConjunctive(
    const ConjunctiveQuery& query, const QueryOptions& options,
    std::function<void(ConjunctiveResult)> cb) {
  Status valid = query.Validate();
  if (!valid.ok()) {
    ConjunctiveResult res;
    res.status = valid;
    cb(std::move(res));
    return;
  }

  if (stats_cache_ == nullptr) {
    // Statistics off: plan and run synchronously, exactly the legacy path.
    StartConjunctive(query, options, {}, std::move(cb));
    return;
  }

  // Statistics prefetch: one single-attempt StatsRequest per stale key
  // region the query's patterns route to. Planning proceeds once every
  // region answered, or at the fetch timeout — whichever is first; regions
  // still unanswered then simply plan on the greedy rank this time (and
  // their record, if it arrives later still, is dropped).
  SimTime now = sim_->Now();
  std::map<std::string, Key> stale_regions;
  for (const TriplePattern& p : query.patterns()) {
    auto routing = p.RoutingConstant();
    if (!routing.has_value()) continue;
    Key key = KeyFor(p.at(*routing).value());
    std::string region = key.ToString();
    if (!stats_cache_->Fresh(region, now)) stale_regions.emplace(region, key);
  }
  if (stale_regions.empty()) {
    StartConjunctive(query, options, EstimatesFor(query), std::move(cb));
    return;
  }

  uint64_t pid = next_prefetch_id_++;
  StatsPrefetch& pf = pending_stats_[pid];
  pf.outstanding = int(stale_regions.size());
  pf.proceed = [this, query, options, cb] {
    StartConjunctive(query, options, EstimatesFor(query), cb);
  };
  for (auto& [region, key] : stale_regions) {
    uint64_t rid = next_stats_req_++;
    pf.reqs.push_back(rid);
    open_stats_reqs_.emplace(rid, OpenStatsFetch{pid, region});
    auto req = std::make_shared<StatsRequest>();
    req->req_id = rid;
    req->reply_to = id();
    ++counters_.stats_fetches;
    overlay_->Route(key, std::move(req));
  }
  sim_->Schedule(options_.stats.fetch_timeout, [this, pid] {
    auto it = pending_stats_.find(pid);
    if (it == pending_stats_.end()) return;  // every region answered in time
    for (uint64_t rid : it->second.reqs) open_stats_reqs_.erase(rid);
    auto proceed = std::move(it->second.proceed);
    pending_stats_.erase(it);
    proceed();
  });
}

std::vector<PatternEstimate> GridVinePeer::EstimatesFor(
    const ConjunctiveQuery& query) {
  SimTime now = sim_->Now();
  std::vector<PatternEstimate> ests(query.patterns().size());
  bool any_known = false;
  for (size_t i = 0; i < query.patterns().size(); ++i) {
    const TriplePattern& p = query.patterns()[i];
    if (auto routing = p.RoutingConstant()) {
      std::string region = KeyFor(p.at(*routing).value()).ToString();
      if (const StoreSketch* sk = stats_cache_->Lookup(region, now)) {
        ests[i] = sk->EstimatePattern(p);
      }
    }
    // An observed extent cardinality for the exact pattern is ground truth:
    // it overrides the sketch's row estimate until it expires. Without a
    // sketch it cannot bound the join-key distincts, so those default to the
    // row count (every row distinct — the conservative upper bound).
    if (auto obs = stats_cache_->ObservedRows(p.Serialize(), now)) {
      if (!ests[i].known) {
        ests[i].distinct_subjects = std::max(1.0, *obs);
        ests[i].distinct_objects = std::max(1.0, *obs);
      }
      ests[i].known = true;
      ests[i].rows = *obs;
    }
    if (ests[i].known) any_known = true;
  }
  // All-unknown estimates must select the legacy greedy plan verbatim.
  if (!any_known) ests.clear();
  return ests;
}

std::string GridVinePeer::ExplainConjunctivePlan(const ConjunctiveQuery& query,
                                                 const QueryOptions& options) {
  std::ostringstream os;
  if (Status v = query.Validate(); !v.ok()) {
    return "invalid query: " + v.ToString() + "\n";
  }
  std::vector<PatternEstimate> ests =
      stats_cache_ != nullptr ? EstimatesFor(query)
                              : std::vector<PatternEstimate>{};
  PlanOptions popts;
  popts.bind_join = options.bind_join;
  popts.estimates = ests;
  PhysicalPlan plan = PlanPhysical(query, popts);
  os << (ests.empty() ? "greedy plan" : "cost-based plan")
     << (stats_cache_ == nullptr
             ? " (statistics disabled)"
             : ests.empty() ? " (no fresh sketches cached)" : "")
     << ":\n" << plan.ToString() << "\n";
  os << "patterns (chain order";
  if (stats_cache_ != nullptr) os << "; est = sketch rows, obs = fed back";
  os << "):\n";
  SimTime now = sim_->Now();
  for (size_t gi = 0; gi < plan.groups.size(); ++gi) {
    const auto& g = plan.groups[gi];
    for (size_t k = 0; k < g.patterns.size(); ++k) {
      size_t pi = g.patterns[k];
      const TriplePattern& p = query.patterns()[pi];
      os << "  g" << gi << "[" << k << "] p" << pi << " " << p.ToString();
      if (pi < ests.size() && ests[pi].known) {
        os << "  est_rows=" << ests[pi].rows;
      } else {
        os << "  est_rows=-";
      }
      if (k < g.est_cards.size() && !ests.empty()) {
        os << " est_join=" << g.est_cards[k];
      }
      if (stats_cache_ != nullptr) {
        if (auto obs = stats_cache_->ObservedRows(p.Serialize(), now)) {
          os << " obs_rows=" << *obs;
        } else {
          os << " obs_rows=-";
        }
      }
      os << "\n";
    }
  }
  return os.str();
}

void GridVinePeer::StartConjunctive(const ConjunctiveQuery& query,
                                    const QueryOptions& options,
                                    std::vector<PatternEstimate> estimates,
                                    std::function<void(ConjunctiveResult)> cb) {
  PlanOptions popts;
  popts.bind_join = options.bind_join;
  popts.estimates = std::move(estimates);
  PhysicalPlan plan = PlanPhysical(query, popts);

  uint64_t exec_id = (uint64_t(id()) << 32) | next_exec_id_++;
  auto ae = std::make_shared<ActiveExec>();
  ae->backend = std::make_unique<ExecBackend>(this, exec_id, options);
  ae->executor = std::make_unique<ConjunctiveExecutor>(query, std::move(plan),
                                                       ae->backend.get());
  if (Tracer* tr = LiveTracer()) {
    ae->span = tr->StartSpan("op.cquery", network_->ambient_ctx());
    tr->Annotate(ae->span, "patterns", double(query.patterns().size()));
    if (!popts.estimates.empty()) tr->Annotate(ae->span, "cost_based", 1.0);
    ae->executor->EnableTracing(tr, ae->span);
  }
  if (!popts.estimates.empty() && options_.stats.divergence > 0) {
    ae->executor->EnableAdaptive(popts, options_.stats.divergence);
  }
  // Observed-extent feedback targets (pattern serializations), captured up
  // front so the done lambda needs no reference back into the query.
  std::vector<std::string> pkeys;
  if (stats_cache_ != nullptr) {
    pkeys.reserve(query.patterns().size());
    for (const TriplePattern& p : query.patterns()) {
      pkeys.push_back(p.Serialize());
    }
  }
  active_execs_.emplace(exec_id, ae);
  SimTime started = sim_->Now();
  TraceCtx cspan = ae->span;
  ae->executor->Run([this, exec_id, started, cspan, cb,
                     pkeys = std::move(pkeys)](
                        ConjunctiveExecutor::ExecResult r) {
    ConjunctiveResult res;
    res.status = std::move(r.status);
    res.rows = std::move(r.rows);
    res.metrics = r.metrics;
    res.latency = sim_->Now() - started;
    res.trace_id = cspan.trace_id;
    // Feed the observed full-scan cardinalities back into the statistics
    // cache: the next query touching these patterns plans on ground truth.
    if (stats_cache_ != nullptr) {
      size_t n = std::min(pkeys.size(), r.observed_extents.size());
      for (size_t i = 0; i < n; ++i) {
        if (r.observed_extents[i] >= 0) {
          stats_cache_->Observe(pkeys[i], r.observed_extents[i], sim_->Now());
        }
      }
    }
    if (cspan.valid()) {
      if (Tracer* tr = LiveTracer()) {
        tr->Annotate(cspan, "rows", double(res.rows.size()));
        tr->Annotate(cspan, "rows_shipped", double(res.metrics.RowsShipped()));
        if (res.metrics.reoptimizations > 0) {
          tr->Annotate(cspan, "reoptimizations",
                       double(res.metrics.reoptimizations));
        }
        if (!res.status.ok()) tr->Annotate(cspan, "error", 1.0);
        tr->EndSpan(cspan);
      }
    }
    // The done callback fires from inside executor code: unregister the
    // exec now (no new transport events can reach it) but keep the objects
    // alive until the stack unwinds.
    auto it = active_execs_.find(exec_id);
    if (it != active_execs_.end()) {
      std::shared_ptr<ActiveExec> keep = std::move(it->second);
      active_execs_.erase(it);
      sim_->Schedule(0, [keep] {});
    }
    cb(std::move(res));
  });
}

// --- Bind-join transport ------------------------------------------------------------

void GridVinePeer::StartBoundScan(uint64_t exec_id,
                                  const TriplePattern& pattern,
                                  std::vector<BindingSet> probes,
                                  QueryBackend::BoundScanCallback cb,
                                  TraceCtx trace_parent) {
  auto it = active_execs_.find(exec_id);
  if (it == active_execs_.end()) {
    cb({Status::Internal("bound scan for unknown executor"), {}});
    return;
  }
  ActiveExec& ae = *it->second;

  // Partition the probes by destination key region. A pattern with a static
  // routing constant has one destination for every probe (all its matches
  // live at that key — maximal coalescing); otherwise each probe's
  // substituted pattern names its own key. std::map keeps the dispatch
  // order deterministic.
  struct Batch {
    std::vector<uint32_t> global_index;
    std::vector<BindingSet> probes;
  };
  std::map<Key, Batch> batches;
  auto static_routing = pattern.RoutingConstant();
  for (uint32_t pi = 0; pi < probes.size(); ++pi) {
    Key key;
    if (static_routing.has_value()) {
      key = KeyFor(pattern.at(*static_routing).value());
    } else {
      TriplePattern bound = SubstituteBindings(pattern, probes[pi]);
      auto routing = bound.RoutingConstant();
      // A probe whose substituted pattern still has no routable constant
      // cannot reach any data; it contributes no rows (legacy parity with
      // the unroutable-branch semantics).
      if (!routing.has_value()) continue;
      key = KeyFor(bound.at(*routing).value());
    }
    Batch& b = batches[key];
    b.global_index.push_back(pi);
    b.probes.push_back(std::move(probes[pi]));
  }

  uint64_t call_id = ae.next_call_id++;
  BoundCall call;
  call.cb = std::move(cb);
  call.outstanding = int(batches.size());
  ae.calls.emplace(call_id, std::move(call));
  if (batches.empty()) {
    ResolveBoundCall(exec_id, call_id);
    return;
  }

  for (auto& [key, b] : batches) {
    auto req = std::make_shared<BoundScanRequest>();
    req->exec_id = exec_id;
    req->pattern = pattern.Serialize();
    req->probes = SerializeBindings(b.probes);
    req->reply_to = id();
    uint64_t did = next_dispatch_id_++;
    req->dispatch_id = did;
    OpenBoundScan ob;
    ob.req = req;
    ob.route_key = key;
    ob.call_id = call_id;
    ob.global_index = std::move(b.global_index);
    if (Tracer* tr = LiveTracer()) {
      ob.span = tr->StartSpan("op.bound_scan", trace_parent);
      tr->Annotate(ob.span, "probes", double(ob.global_index.size()));
      req->trace_ctx = ob.span;
    }
    ae.open_scans.emplace(did, std::move(ob));
    // Route may deliver locally (synchronously); the branch must be
    // registered first. The response itself always arrives asynchronously
    // (SendDirect), so `ae` stays valid across this loop.
    if (options_.batch.enabled) {
      EnqueueBatch(key, req);
    } else {
      overlay_->Route(key, req);
    }
    ArmBoundScanTimer(exec_id, did, 1);
  }
}

void GridVinePeer::ArmBoundScanTimer(uint64_t exec_id, uint64_t did,
                                     int attempt) {
  SimTime timeout = options_.query_retry.TimeoutFor(attempt, &rng_);
  sim_->Schedule(timeout, [this, exec_id, did, attempt] {
    auto it = active_execs_.find(exec_id);
    if (it == active_execs_.end()) return;
    ActiveExec& ae = *it->second;
    auto d = ae.open_scans.find(did);
    // Answered in the meantime, or a newer attempt owns the timer.
    if (d == ae.open_scans.end() || d->second.attempts != attempt) return;
    if (options_.query_retry.Exhausted(d->second.attempts)) {
      // Branch written off: the whole call resolves as Timeout once its
      // remaining branches close.
      CloseBoundScan(exec_id, did, /*answered=*/false);
      return;
    }
    ++d->second.attempts;
    int next_attempt = d->second.attempts;
    Key route_key = d->second.route_key;
    std::shared_ptr<BoundScanRequest> req = d->second.req;
    if (Tracer* tr = LiveTracer()) {
      if (d->second.span.valid()) tr->Instant("op.retry", d->second.span);
    }
    overlay_->Route(route_key, std::move(req));
    ArmBoundScanTimer(exec_id, did, next_attempt);
  });
}

void GridVinePeer::CloseBoundScan(uint64_t exec_id, uint64_t did,
                                  bool answered) {
  auto it = active_execs_.find(exec_id);
  if (it == active_execs_.end()) return;
  ActiveExec& ae = *it->second;
  auto d = ae.open_scans.find(did);
  if (d == ae.open_scans.end()) return;
  uint64_t call_id = d->second.call_id;
  if (d->second.span.valid()) {
    if (Tracer* tr = LiveTracer()) {
      tr->Annotate(d->second.span, "attempts", double(d->second.attempts));
      if (!answered) tr->Annotate(d->second.span, "timed_out", 1.0);
      tr->EndSpan(d->second.span);
    }
  }
  ae.open_scans.erase(d);
  auto c = ae.calls.find(call_id);
  if (c == ae.calls.end()) return;
  if (!answered) c->second.timed_out = true;
  if (--c->second.outstanding == 0) ResolveBoundCall(exec_id, call_id);
}

void GridVinePeer::ResolveBoundCall(uint64_t exec_id, uint64_t call_id) {
  auto it = active_execs_.find(exec_id);
  if (it == active_execs_.end()) return;
  ActiveExec& ae = *it->second;
  auto c = ae.calls.find(call_id);
  if (c == ae.calls.end()) return;
  QueryBackend::BoundScanResult r;
  r.status = c->second.timed_out
                 ? Status::Timeout("bound scan branch exhausted retries")
                 : Status::OK();
  r.rows = std::move(c->second.rows);
  QueryBackend::BoundScanCallback cb = std::move(c->second.cb);
  ae.calls.erase(c);
  // The callback re-enters the executor: it may issue the next bind-join or
  // finish the whole query (which unregisters the ActiveExec) — no member
  // access past this call.
  cb(std::move(r));
}

void GridVinePeer::HandleBoundScanRequest(const BoundScanRequest& req) {
  ++counters_.bound_scans_answered;
  auto resp = std::make_shared<BoundScanResponse>();
  resp->exec_id = req.exec_id;
  resp->dispatch_id = req.dispatch_id;
  resp->responder = id();

  // Cache key: the pattern id plus the serialized probe batch (the
  // bound-constant signature). The cached value is the complete wire answer
  // — rows payload and probe-index tags — so a hit skips probe parsing,
  // substitution, matching and re-serialization alike.
  std::string pkey;
  if (cache_ != nullptr) {
    pkey = "b|" + req.pattern;
    if (const ExtentCache::Extent* hit =
            cache_->Lookup(pkey, req.probes, local_db_.version())) {
      counters_.result_rows_sent += hit->row_count;
      if (Tracer* tr = LiveTracer()) {
        TraceCtx mark =
            tr->Instant("op.bound_answer", ResponderParent(req.trace_ctx));
        tr->Annotate(mark, "rows", double(hit->row_count));
        tr->Annotate(mark, "cached", 1.0);
      }
      resp->rows = hit->rows;
      resp->probe_index = hit->probe_index;
      SendResponse(req.reply_to, std::move(resp),
                   ScanServeCost(/*cache_hit=*/true, hit->row_count));
      return;
    }
  }

  auto pattern = TriplePattern::Parse(req.pattern);
  if (!pattern.ok()) {
    GV_CLOG("gridvine", Warning)
        << "bad bound scan pattern: " << pattern.status();
    return;
  }
  std::vector<BindingSet> probes;
  if (!req.probes.empty()) {
    auto parsed = ParseBindings(req.probes);
    if (!parsed.ok()) {
      GV_CLOG("gridvine", Warning)
          << "bad bound scan probes: " << parsed.status();
      return;
    }
    probes = std::move(parsed).value();
  }
  // An empty probes payload is the serialized form of one unconstrained
  // probe (the existence check): issuers never send zero probes.
  if (probes.empty()) probes.emplace_back();

  if (Tracer* tr = LiveTracer()) {
    TraceCtx mark =
        tr->Instant("op.bound_answer", ResponderParent(req.trace_ctx));
    tr->Annotate(mark, "probes", double(probes.size()));
  }
  std::vector<BindingSet> out_rows;
  for (uint32_t pi = 0; pi < probes.size(); ++pi) {
    TriplePattern bound = SubstituteBindings(*pattern, probes[pi]);
    bool fully_bound = bound.Variables().empty();
    auto rows = local_db_.MatchPattern(bound);
    // A fully-bound pattern matches as one empty row per stored copy of the
    // triple; the answer is a boolean, so clamp to at most one.
    if (fully_bound && rows.size() > 1) rows.resize(1);
    for (auto& row : rows) {
      resp->probe_index.push_back(pi);
      out_rows.push_back(std::move(row));
    }
  }
  counters_.result_rows_sent += out_rows.size();
  // Rows of empty bindings (no free variables) serialize to nothing; the
  // parallel probe_index carries their count, so leave the payload empty.
  bool any_bindings = false;
  for (const BindingSet& row : out_rows) {
    if (!row.empty()) {
      any_bindings = true;
      break;
    }
  }
  resp->rows = any_bindings ? SerializeBindings(out_rows) : "";
  if (cache_ != nullptr) {
    cache_->Insert(pkey, req.probes, local_db_.version(),
                   ExtentCache::Extent{resp->rows, resp->probe_index,
                                       out_rows.size()});
  }
  SendResponse(req.reply_to, std::move(resp),
               ScanServeCost(/*cache_hit=*/false, out_rows.size()));
}

void GridVinePeer::HandleBoundScanResponse(const BoundScanResponse& resp) {
  auto it = active_execs_.find(resp.exec_id);
  if (it == active_execs_.end()) return;  // exec finished: late answer
  ActiveExec& ae = *it->second;
  auto d = ae.open_scans.find(resp.dispatch_id);
  // A response for a branch that is no longer open is a duplicate (both the
  // original and a retry answering): every branch is accounted exactly once.
  if (d == ae.open_scans.end()) return;
  OpenBoundScan& ob = d->second;

  std::vector<BindingSet> parsed;
  if (!resp.rows.empty()) {
    auto rows = ParseBindings(resp.rows);
    if (!rows.ok()) {
      GV_CLOG("gridvine", Warning)
          << "bad bound scan rows: " << rows.status();
      return;  // keep the branch open; a retry may deliver a clean copy
    }
    parsed = std::move(rows).value();
  }
  // All-empty binding rows travel as an empty payload (see the request
  // handler); reconstruct them from the probe_index count.
  if (parsed.size() != resp.probe_index.size()) {
    if (!parsed.empty()) {
      GV_CLOG("gridvine", Warning) << "bound scan rows/probe_index mismatch";
      return;
    }
    parsed.resize(resp.probe_index.size());
  }

  auto c = ae.calls.find(ob.call_id);
  if (c != ae.calls.end()) {
    for (size_t i = 0; i < parsed.size(); ++i) {
      uint32_t local = resp.probe_index[i];
      if (local >= ob.global_index.size()) continue;
      QueryBackend::BoundRow br;
      br.probe_index = ob.global_index[local];
      br.bindings = std::move(parsed[i]);
      c->second.rows.push_back(std::move(br));
    }
  }
  CloseBoundScan(resp.exec_id, resp.dispatch_id, /*answered=*/true);
}

// --- Statistics layer ---------------------------------------------------------

void GridVinePeer::HandleStatsRequest(const StatsRequest& req) {
  ++counters_.stats_served;
  // Lazy rebuild: the sketch is recomputed only when a request finds the
  // store version has moved — one integer compare per request, amortizing
  // the O(rows) build across a whole version epoch.
  if (serving_sketch_ == nullptr ||
      serving_sketch_->built_version() != local_db_.version()) {
    serving_sketch_ =
        std::make_unique<StoreSketch>(StoreSketch::Build(local_db_));
    ++counters_.sketch_rebuilds;
  }
  if (Tracer* tr = LiveTracer()) {
    TraceCtx mark = tr->Instant("op.stats_answer", ResponderParent(req.trace_ctx));
    tr->Annotate(mark, "rows", double(serving_sketch_->total_rows()));
  }
  auto rec = std::make_shared<StatsRecord>();
  rec->req_id = req.req_id;
  rec->sketch = serving_sketch_->Serialize();
  rec->store_version = local_db_.version();
  rec->responder = id();
  SendResponse(req.reply_to, std::move(rec),
               ScanServeCost(/*cache_hit=*/false, 0));
}

void GridVinePeer::HandleStatsRecord(const StatsRecord& rec) {
  auto it = open_stats_reqs_.find(rec.req_id);
  if (it == open_stats_reqs_.end()) return;  // written off at the timeout
  OpenStatsFetch of = std::move(it->second);
  open_stats_reqs_.erase(it);
  if (stats_cache_ != nullptr) {
    auto sketch = StoreSketch::Parse(rec.sketch);
    if (sketch.ok()) {
      stats_cache_->Put(of.region, std::move(sketch).value(), sim_->Now());
    } else {
      GV_CLOG("gridvine", Warning)
          << "bad stats record: " << sketch.status();
    }
  }
  auto p = pending_stats_.find(of.prefetch_id);
  if (p == pending_stats_.end()) return;
  if (--p->second.outstanding > 0) return;
  auto proceed = std::move(p->second.proceed);
  pending_stats_.erase(p);
  proceed();
}

// --- Serving layer ------------------------------------------------------------

SimTime GridVinePeer::ScanServeCost(bool cache_hit, size_t rows) const {
  if (!options_.service.enabled) return 0;
  if (cache_hit) return options_.service.per_hit;
  SimTime overhead = serving_batched_request_ ? options_.service.per_item
                                              : options_.service.per_request;
  return overhead + double(rows) * options_.service.per_row;
}

void GridVinePeer::SendResponse(NodeId to, std::shared_ptr<MessageBody> body,
                                SimTime cost) {
  if (LiveTracer() != nullptr && !body->trace_ctx.valid()) {
    // The causal parent is the request flight being handled right now; the
    // deferred send below runs from a timer where the ambient ctx is gone,
    // so stamp it on the body while it is still live.
    body->trace_ctx = network_->ambient_ctx();
  }
  if (batch_reply_sink_ != nullptr) {
    batch_reply_sink_->push_back(std::move(body));
    batch_sink_cost_ += cost;
    return;
  }
  if (!options_.service.enabled || cost <= 0) {
    overlay_->SendDirect(to, std::move(body));
    return;
  }
  // One logical server per peer: the response leaves once every earlier
  // response's service time has elapsed (FIFO). Under a flash crowd the hot
  // responder's queue is exactly this gap growing.
  SimTime now = sim_->Now();
  SimTime start = busy_until_ > now ? busy_until_ : now;
  busy_until_ = start + cost;
  if (Tracer* tr = LiveTracer()) {
    if (body->trace_ctx.valid()) {
      // The responder-side breakdown the critical-path profiler attributes:
      // time parked behind earlier responses is queue-wait, the service time
      // itself is op.service. Both hang off the request flight.
      if (start > now) {
        tr->Interval("op.queue", body->trace_ctx, now, start);
      }
      TraceCtx sv = tr->Interval("op.service", body->trace_ctx, start,
                                 busy_until_);
      tr->Annotate(sv, "cost", cost);
    }
  }
  sim_->Schedule(busy_until_ - now,
                 [this, to, body = std::move(body)]() mutable {
                   overlay_->SendDirect(to, std::move(body));
                 });
}

void GridVinePeer::EnqueueBatch(const Key& key,
                                std::shared_ptr<const MessageBody> part) {
  BatchBuffer& buf = batch_buffers_[key];
  if (buf.parts.empty()) {
    buf.gen = next_batch_gen_++;
    uint64_t gen = buf.gen;
    Key k = key;
    // The window runs in simulated time, so batching composition is part of
    // the deterministic event order (same seed => same batches).
    sim_->Schedule(options_.batch.window,
                   [this, k, gen] { FlushBatch(k, gen); });
  }
  buf.parts.push_back(std::move(part));
  ++counters_.batch_items;
  if (buf.parts.size() >= options_.batch.max_items) FlushBatch(key, buf.gen);
}

void GridVinePeer::FlushBatch(const Key& key, uint64_t gen) {
  auto it = batch_buffers_.find(key);
  // Already flushed at max_items (a later buffer for the key carries a newer
  // generation), or empty: the window timer has nothing to do.
  if (it == batch_buffers_.end() || it->second.gen != gen ||
      it->second.parts.empty()) {
    return;
  }
  std::vector<std::shared_ptr<const MessageBody>> parts =
      std::move(it->second.parts);
  batch_buffers_.erase(it);
  ++counters_.batch_flushes;
  if (parts.size() == 1) {
    // A lone request gains nothing from the envelope; send it plain so the
    // responder path matches the unbatched mode.
    overlay_->Route(key, std::move(parts[0]));
    return;
  }
  auto env = std::make_shared<BatchEnvelope>();
  env->reply_to = id();
  env->parts = std::move(parts);
  overlay_->Route(key, std::move(env));
}

void GridVinePeer::HandleBatchEnvelope(const BatchEnvelope& env) {
  const MessageBody* first = nullptr;
  for (const auto& part : env.parts) {
    if (part) {
      first = part.get();
      break;
    }
  }
  if (first == nullptr) return;

  // Issuer side: a reply envelope demultiplexes into the per-query response
  // handlers (dispatch ids make this duplicate-safe, exactly as if the
  // responses had arrived individually).
  if (dynamic_cast<const QueryResponse*>(first) != nullptr ||
      dynamic_cast<const BoundScanResponse*>(first) != nullptr) {
    for (const auto& part : env.parts) {
      if (auto* qr = dynamic_cast<const QueryResponse*>(part.get())) {
        HandleQueryResponse(*qr);
      } else if (auto* br =
                     dynamic_cast<const BoundScanResponse*>(part.get())) {
        HandleBoundScanResponse(*br);
      }
    }
    return;
  }

  // Responder side: serve each part through its normal handler, with
  // responses collected into one reply envelope. Only iterative
  // single-pattern and bound-scan requests are ever batched (both answer
  // synchronously, without re-entering the network), so the sink cannot see
  // an unrelated response. The envelope pays one per_request of service
  // time; each part adds its own (per_item-based) cost via SendResponse.
  ++counters_.batches_answered;
  std::vector<std::shared_ptr<const MessageBody>> sink;
  batch_reply_sink_ = &sink;
  batch_sink_cost_ = options_.service.enabled ? options_.service.per_request : 0;
  serving_batched_request_ = true;
  for (const auto& part : env.parts) {
    if (auto* req = dynamic_cast<const QueryRequest*>(part.get())) {
      HandleQueryRequest(*req);
    } else if (auto* breq =
                   dynamic_cast<const BoundScanRequest*>(part.get())) {
      HandleBoundScanRequest(*breq);
    }
  }
  serving_batched_request_ = false;
  batch_reply_sink_ = nullptr;
  SimTime cost = batch_sink_cost_;
  batch_sink_cost_ = 0;
  if (sink.empty()) return;
  auto reply = std::make_shared<BatchEnvelope>();
  reply->reply_to = id();
  reply->parts = std::move(sink);
  SendResponse(env.reply_to, std::move(reply), cost);
}

size_t GridVinePeer::MemoryFootprint() const {
  // Transient query state (pending_queries_, active_execs_) is counted
  // structurally — its strings are short-lived and negligible against the
  // store and overlay at steady state.
  size_t bytes = sizeof(*this) + overlay_->MemoryFootprint() +
                 local_db_.MemoryFootprint();
  bytes += HashMapBytes(pending_queries_) + HashMapBytes(active_execs_);
  if (stats_cache_) bytes += stats_cache_->MemoryFootprint();
  if (serving_sketch_) bytes += serving_sketch_->MemoryFootprint();
  bytes += HashMapBytes(open_stats_reqs_) + HashMapBytes(pending_stats_);
  bytes += RbTreeBytes(recursive_seen_.size(), sizeof(*recursive_seen_.begin()));
  bytes += RbTreeBytes(published_degrees_.size(),
                       sizeof(*published_degrees_.begin()));
  return bytes;
}

}  // namespace gridvine
