#ifndef GRIDVINE_SELFORG_SELF_ORGANIZER_H_
#define GRIDVINE_SELFORG_SELF_ORGANIZER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gridvine/gridvine_network.h"
#include "mapping/mapping_graph.h"
#include "selforg/attribute_matcher.h"
#include "selforg/incremental_assessor.h"
#include "selforg/mapping_assessor.h"

namespace gridvine {

/// Drives the self-organization loop of paper Section 3 over a live GridVine
/// deployment:
///
///   1. every schema owner publishes its (in, out) degrees to Hash(domain);
///   2. the connectivity indicator ci is derived from the registry;
///   3. while ci < 0 (no giant component), additional mappings are created
///      automatically: a schema pair is selected (preferring pairs sharing
///      instance references, i.e. schemas describing the same entities), the
///      attributes are aligned with lexical + value-set measures, and the
///      mapping is inserted into the network;
///   4. the Bayesian cycle analysis assesses automatic mappings and
///      deprecates those whose posterior correctness falls below threshold,
///      making room for new mapping paths.
///
/// Each RunRound() performs one such round. All state flows through the DHT
/// (schema/mapping/degree records) exactly as individual peers would do it;
/// the organizer itself holds only the owner assignment (which peer is
/// responsible for which schema).
class SelfOrganizer {
 public:
  struct Options {
    std::string domain = "bio";
    /// Matcher configuration for automatic mapping creation.
    AttributeMatcher::Options matcher;
    /// Assessor configuration for deprecation.
    MappingAssessor::Options assessor;
    /// Mappings created per round while ci < 0.
    int creations_per_round = 2;
    /// Posterior below which an automatic mapping is deprecated.
    double deprecate_below = 0.45;
    /// How many object values per attribute are sampled for the set-distance
    /// measure (queries the live network).
    int value_sample_limit = 64;
    /// Reformulation hops used when sampling attribute values.
    uint64_t seed = 42;
    /// Incremental assessment: a persistent graph view feeds add/deprecate/
    /// re-intern events into a maintained factor graph (IncrementalAssessor)
    /// instead of rebuilding and re-converging from scratch each round.
    /// false = the legacy full recompute, kept for differentials/ablations.
    bool incremental = true;
    /// Per-round factor->variable message budget for incremental assessment;
    /// unconverged regions resume next round.
    size_t assess_message_cap = 50000;
    /// Agreement maintenance under schema evolution: deprecate active
    /// mappings whose correspondences reference attribute URIs absent from
    /// the current schema definitions (they are then re-derived by the
    /// creation step in later rounds).
    bool repair_stale_mappings = true;
    /// Vector size for the matcher's precomputed-embedding channel (built
    /// locally from sampled values; only used while
    /// matcher.embedding_weight > 0).
    int embedding_dim = 64;
  };

  SelfOrganizer(GridVineNetwork* net, Options options);

  /// Declares that `peer_idx` owns (stores/publishes) `schema`.
  void RegisterSchemaOwner(const std::string& schema, size_t peer_idx);

  /// Publishes current degrees for every registered schema (step 1).
  Status PublishAllDegrees();

  /// Crawls the mediation layer through the DHT: domain registry ->
  /// schema list -> per-schema mapping records. Returns the graph view.
  MappingGraph BuildGraphView();

  /// The connectivity indicator from the *registry* (what peers actually
  /// see), not from an omniscient graph.
  Result<double> ComputeIndicator();

  struct RoundReport {
    double ci_before = 0;
    double ci_after = 0;
    double scc_fraction_after = 0;
    size_t mappings_created = 0;
    size_t mappings_deprecated = 0;
    /// Deprecated by agreement maintenance (dangling correspondences after
    /// schema evolution), not by the Bayesian assessment.
    size_t mappings_stale_deprecated = 0;
    size_t active_mappings = 0;
    /// Incremental-assessment effort this round (0 when incremental=false).
    size_t bp_messages = 0;
    size_t bp_factors = 0;
    bool bp_converged = true;
    std::vector<std::string> created_ids;
    std::vector<std::string> deprecated_ids;
    std::vector<std::string> stale_deprecated_ids;
  };

  /// One full self-organization round (steps 1-4).
  RoundReport RunRound();

  /// Continuous background operation: advances simulated time by `interval`
  /// (churn, faults and query traffic fire inside the slice), then runs one
  /// round synchronously from outside the event loop; repeated `rounds`
  /// times. Works identically on the single-queue and sharded engines (the
  /// network is quiescent between slices).
  std::vector<RoundReport> RunContinuous(int rounds, SimTime interval);

  /// Re-syncs the persistent graph view from the DHT. Unchanged records are
  /// no-ops (MappingGraph re-intern semantics); genuine changes flow as
  /// events into the incremental assessor. Fetches that fail (owner down)
  /// leave the previous view of that schema in place.
  const MappingGraph& SyncGraphView();

  /// Agreement maintenance: deprecates active mappings with correspondences
  /// referencing attributes no longer present in the (possibly evolved)
  /// schema definitions. Returns the deprecated ids.
  std::vector<std::string> RepairStaleMappings();

  /// gv.selforg.* counters into `registry` (wire into
  /// GridVineNetwork::AddMetricsSource for unified snapshots).
  void PublishMetrics(MetricsRegistry* registry) const;

  /// The persistent graph view (valid after SyncGraphView/RunRound).
  const MappingGraph& graph_view() const { return view_; }
  /// The maintained factor graph (attached to the view for its lifetime).
  const IncrementalAssessor& assessor() const { return inc_assessor_; }

  /// Automatic mapping creation between two specific schemas (step 3's
  /// inner operation; exposed for tests and ablations).
  Result<SchemaMapping> CreateMapping(const std::string& source,
                                      const std::string& target);

  /// Samples the value sets of every attribute of `schema` by querying the
  /// live network.
  AttributeMatcher::ValueSets SampleValueSets(const Schema& schema);

  /// Selects up to `count` disconnected-ish schema pairs to map, preferring
  /// pairs that share instance references (co-described subjects).
  std::vector<std::pair<std::string, std::string>> SelectCandidatePairs(
      const MappingGraph& graph, int count);

  size_t OwnerOf(const std::string& schema) const;

 private:
  /// Subjects observed under any attribute of `schema` (instance sample).
  std::set<std::string> SampleSubjects(const Schema& schema);

  /// Applies a mapping state change both to the network (UpsertMapping at
  /// the owner) and to the local view (so assessor events fire now, not at
  /// the next sync).
  bool PushMappingUpdate(const SchemaMapping& updated);

  GridVineNetwork* net_;
  Options options_;
  Rng rng_;
  std::map<std::string, size_t> owners_;
  uint64_t next_mapping_seq_ = 1;

  /// Persistent mapping-graph view + maintained factor graph.
  MappingGraph view_;
  IncrementalAssessor inc_assessor_;

  // Lifetime counters behind PublishMetrics.
  uint64_t rounds_run_ = 0;
  uint64_t total_created_ = 0;
  uint64_t total_deprecated_ = 0;
  uint64_t total_stale_deprecated_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_SELFORG_SELF_ORGANIZER_H_
