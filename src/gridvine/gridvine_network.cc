#include "gridvine/gridvine_network.h"

#include "gridvine/query_frontend.h"

namespace gridvine {

GridVineNetwork::GridVineNetwork(Options options)
    : options_(options), rng_(options.seed) {
  options_.peer.key_depth = options_.key_depth;
  options_.overlay.key_depth = options_.key_depth;
  if (options_.shards > 1 || options_.force_sharded) {
    ShardedNetwork::Options sopts;
    sopts.shards = options_.shards;
    sopts.seed = options_.seed;
    sopts.loss_probability = options_.loss_probability;
    sopts.latency = MakeLatency();
    engine_ = std::make_unique<ShardedNetwork>(std::move(sopts));
    trace_view_.SetParts(engine_->TracerParts());
    // Each peer is built against its owner shard's simulator and lane; the
    // sequential construction order fixes the id <-> shard assignment.
    for (size_t i = 0; i < options_.num_peers; ++i) {
      peers_.push_back(std::make_unique<GridVinePeer>(
          engine_->SimForNext(), engine_->LaneForNext(), rng_.Fork(),
          options_.peer, options_.overlay));
    }
  } else {
    trace_view_.SetParts({&tracer_});
    tracer_.SetClock([this] { return sim_.Now(); });
    network_ = std::make_unique<Network>(&sim_, MakeLatency(), rng_.Fork(),
                                         options_.loss_probability);
    network_->SetTracer(&tracer_);
    for (size_t i = 0; i < options_.num_peers; ++i) {
      peers_.push_back(std::make_unique<GridVinePeer>(
          &sim_, network_.get(), rng_.Fork(), options_.peer,
          options_.overlay));
    }
  }
  Rng wire_rng = rng_.Fork();
  PGridBuilder::BuildBalanced(overlay_peers(), &wire_rng,
                              options_.refs_per_level);
}

std::unique_ptr<LatencyModel> GridVineNetwork::MakeLatency() {
  switch (options_.latency) {
    case LatencyKind::kConstant:
      return std::make_unique<ConstantLatency>(options_.latency_param);
    case LatencyKind::kUniform:
      return std::make_unique<UniformLatency>(0, 2 * options_.latency_param);
    case LatencyKind::kWan:
      return std::make_unique<WanLatency>(
          options_.latency_param, options_.wan_mu, options_.wan_sigma,
          options_.wan_straggler_prob, options_.wan_straggler_mean);
  }
  return std::make_unique<ConstantLatency>(options_.latency_param);
}

std::vector<PGridPeer*> GridVineNetwork::overlay_peers() {
  std::vector<PGridPeer*> out;
  out.reserve(peers_.size());
  for (auto& p : peers_) out.push_back(p->overlay());
  return out;
}

MetricsRegistry& GridVineNetwork::CollectMetrics() {
  metrics_.Clear();
  if (engine_) {
    engine_->PublishMetrics(&metrics_);
  } else {
    network_->PublishMetrics(&metrics_);
  }
  for (auto& p : peers_) {
    p->PublishMetrics(&metrics_);
    p->overlay()->PublishMetrics(&metrics_);
  }
  for (auto& source : metrics_sources_) source(&metrics_);
  // Spans lost to ring wrap-around, summed across shards. Nonzero means
  // exported traces may contain orphans (TraceAnalyzer downgrades those to
  // warnings) — the signal to enlarge the ring.
  metrics_.Counter("trace.evicted") = trace_view_.evicted();
  if (health_enabled_) watchdog_.PublishMetrics(&metrics_);
  return metrics_;
}

void GridVineNetwork::EnableHealth(double window_s,
                                   HealthWatchdog::Options opts) {
  watchdog_ = HealthWatchdog(opts);
  watchdog_.SetTracer(&trace_view_);
  health_window_ = window_s;
  health_enabled_ = true;
  ScheduleHealthTick();
}

void GridVineNetwork::HealthTick() {
  CollectMetrics();
  watchdog_.Evaluate(Now(), &metrics_);
  timeseries_.Record(Now(), metrics_);
}

void GridVineNetwork::ScheduleHealthTick() {
  // The tick re-arms only while events remain, so drain loops (Settle,
  // RunUntilIdle) still terminate; an idle deployment samples nothing.
  // On the sharded engine the tick is a global task: shards are parked with
  // clocks synced, so reading every peer's counters is race-free, and
  // rescheduling from inside a global task is legal (the engine is
  // quiescent there).
  const SimTime at = Now() + health_window_;
  if (engine_) {
    engine_->ScheduleGlobal(at, [this] {
      HealthTick();
      if (engine_->pending() > 0) ScheduleHealthTick();
    });
  } else {
    sim_.ScheduleAt(at, [this] {
      HealthTick();
      if (sim_.pending() > 0) ScheduleHealthTick();
    });
  }
}

size_t GridVineNetwork::MemoryFootprint(
    std::vector<std::pair<std::string, size_t>>* breakdown) const {
  size_t overlay = 0, stores = 0, caches = 0, peers = 0;
  for (const auto& p : peers_) {
    overlay += p->overlay()->MemoryFootprint();
    stores += p->local_db().MemoryFootprint();
    if (p->cache()) caches += p->cache()->MemoryFootprint();
    peers += p->MemoryFootprint();
  }
  const size_t engine = engine_ ? engine_->MemoryFootprint()
                                : sim_.MemoryFootprint();
  const size_t total =
      peers + engine +
      peers_.capacity() * sizeof(std::unique_ptr<GridVinePeer>);
  if (breakdown) {
    breakdown->emplace_back("peers.total", peers);
    breakdown->emplace_back("peers.overlay", overlay);
    breakdown->emplace_back("peers.store", stores);
    breakdown->emplace_back("peers.cache", caches);
    breakdown->emplace_back(engine_ ? "engine.sharded" : "engine.sim", engine);
  }
  return total;
}

void GridVineNetwork::RebuildOverlayAdaptive(const std::vector<Key>& sample) {
  Rng wire_rng = rng_.Fork();
  PGridBuilder::BuildAdaptive(overlay_peers(), sample, &wire_rng,
                              options_.refs_per_level);
}

void GridVineNetwork::PumpUntil(const bool* done) {
  // One draining call instead of a Run(1)-per-event loop: the simulator
  // checks the flag between events, so stop semantics are unchanged but the
  // per-event pump overhead (call + loop setup per event) is gone. The
  // sharded engine checks at epoch boundaries instead — coarser, but every
  // completion callback runs on the issuing peer's shard, which is what its
  // flag rule requires.
  if (engine_) {
    engine_->RunUntilFlag(done);
  } else {
    sim_.RunUntilFlag(done);
  }
}

Status GridVineNetwork::InsertTriple(size_t peer_idx, const Triple& triple) {
  bool done = false;
  Status result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->InsertTriple(triple, [&](Status s) {
      result = std::move(s);
      done = true;
    });
  });
  PumpUntil(&done);
  return result;
}

Status GridVineNetwork::InsertTriples(size_t peer_idx,
                                      const std::vector<Triple>& triples) {
  bool done = false;
  Status result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->InsertTriples(triples, [&](Status s) {
      result = std::move(s);
      done = true;
    });
  });
  PumpUntil(&done);
  return result;
}

Status GridVineNetwork::RemoveTriple(size_t peer_idx, const Triple& triple) {
  bool done = false;
  Status result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->RemoveTriple(triple, [&](Status s) {
      result = std::move(s);
      done = true;
    });
  });
  PumpUntil(&done);
  return result;
}

Status GridVineNetwork::InsertSchema(size_t peer_idx, const Schema& schema) {
  bool done = false;
  Status result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->InsertSchema(schema, [&](Status s) {
      result = std::move(s);
      done = true;
    });
  });
  PumpUntil(&done);
  return result;
}

Status GridVineNetwork::UpsertSchema(size_t peer_idx, const Schema& schema) {
  bool done = false;
  Status result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->UpsertSchema(schema, [&](Status s) {
      result = std::move(s);
      done = true;
    });
  });
  PumpUntil(&done);
  return result;
}

Status GridVineNetwork::InsertMapping(size_t peer_idx,
                                      const SchemaMapping& mapping) {
  bool done = false;
  Status result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->InsertMapping(mapping, [&](Status s) {
      result = std::move(s);
      done = true;
    });
  });
  PumpUntil(&done);
  return result;
}

Status GridVineNetwork::UpsertMapping(size_t peer_idx,
                                      const SchemaMapping& mapping) {
  bool done = false;
  Status result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->UpsertMapping(mapping, [&](Status s) {
      result = std::move(s);
      done = true;
    });
  });
  PumpUntil(&done);
  return result;
}

Status GridVineNetwork::PublishDegree(size_t peer_idx,
                                      const std::string& domain,
                                      const std::string& schema, int in_degree,
                                      int out_degree) {
  bool done = false;
  Status result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->PublishDegree(domain, schema, in_degree, out_degree,
                                    [&](Status s) {
                                      result = std::move(s);
                                      done = true;
                                    });
  });
  PumpUntil(&done);
  return result;
}

Result<Schema> GridVineNetwork::FetchSchema(size_t peer_idx,
                                            const std::string& name) {
  bool done = false;
  Result<Schema> result = Status::Internal("not completed");
  Issue(peer_idx, [&] {
    peers_[peer_idx]->FetchSchema(name, [&](Result<Schema> r) {
      result = std::move(r);
      done = true;
    });
  });
  PumpUntil(&done);
  return result;
}

Result<std::vector<SchemaMapping>> GridVineNetwork::FetchMappingsFor(
    size_t peer_idx, const std::string& schema) {
  bool done = false;
  Result<std::vector<SchemaMapping>> result = Status::Internal("not completed");
  Issue(peer_idx, [&] {
    peers_[peer_idx]->FetchMappingsFor(
        schema, [&](Result<std::vector<SchemaMapping>> r) {
          result = std::move(r);
          done = true;
        });
  });
  PumpUntil(&done);
  return result;
}

Result<std::vector<GridVinePeer::DegreeRecord>>
GridVineNetwork::FetchDomainDegrees(size_t peer_idx,
                                    const std::string& domain) {
  bool done = false;
  Result<std::vector<GridVinePeer::DegreeRecord>> result =
      Status::Internal("not completed");
  Issue(peer_idx, [&] {
    peers_[peer_idx]->FetchDomainDegrees(
        domain, [&](Result<std::vector<GridVinePeer::DegreeRecord>> r) {
          result = std::move(r);
          done = true;
        });
  });
  PumpUntil(&done);
  return result;
}

GridVinePeer::QueryResult GridVineNetwork::SearchFor(
    size_t peer_idx, const TriplePatternQuery& query,
    const GridVinePeer::QueryOptions& options) {
  bool done = false;
  GridVinePeer::QueryResult result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->SearchFor(query, options,
                                [&](GridVinePeer::QueryResult r) {
                                  result = std::move(r);
                                  done = true;
                                });
  });
  PumpUntil(&done);
  return result;
}

GridVinePeer::ConjunctiveResult GridVineNetwork::SearchForConjunctive(
    size_t peer_idx, const ConjunctiveQuery& query,
    const GridVinePeer::QueryOptions& options) {
  bool done = false;
  GridVinePeer::ConjunctiveResult result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->SearchForConjunctive(
        query, options, [&](GridVinePeer::ConjunctiveResult r) {
          result = std::move(r);
          done = true;
        });
  });
  PumpUntil(&done);
  return result;
}

GridVinePeer::QueryResult GridVineNetwork::ServeFor(
    size_t peer_idx, const TriplePatternQuery& query,
    const GridVinePeer::QueryOptions& options) {
  bool done = false;
  GridVinePeer::QueryResult result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->frontend()->Submit(query, options,
                                         [&](GridVinePeer::QueryResult r) {
                                           result = std::move(r);
                                           done = true;
                                         });
  });
  PumpUntil(&done);
  return result;
}

GridVinePeer::ConjunctiveResult GridVineNetwork::ServeForConjunctive(
    size_t peer_idx, const ConjunctiveQuery& query,
    const GridVinePeer::QueryOptions& options) {
  bool done = false;
  GridVinePeer::ConjunctiveResult result;
  Issue(peer_idx, [&] {
    peers_[peer_idx]->frontend()->SubmitConjunctive(
        query, options, [&](GridVinePeer::ConjunctiveResult r) {
          result = std::move(r);
          done = true;
        });
  });
  PumpUntil(&done);
  return result;
}

}  // namespace gridvine
