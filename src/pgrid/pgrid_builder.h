#ifndef GRIDVINE_PGRID_PGRID_BUILDER_H_
#define GRIDVINE_PGRID_PGRID_BUILDER_H_

#include <vector>

#include "common/key.h"
#include "common/rng.h"
#include "pgrid/pgrid_peer.h"

namespace gridvine {

/// Deterministic overlay construction: assigns peer paths and wires routing
/// tables in one pass. This models the *converged* state of P-Grid's
/// decentralized construction (see ExchangeProtocol for the self-organizing
/// path) and is what experiments use so results do not depend on bootstrap
/// randomness.
class PGridBuilder {
 public:
  /// Assigns the 2^d distinct d-bit paths, d = floor(log2 n), round-robin;
  /// peers beyond 2^d become replicas of the earlier ones. Then wires routing
  /// with `refs_per_level` references per level and links replica sets.
  static void BuildBalanced(const std::vector<PGridPeer*>& peers, Rng* rng,
                            int refs_per_level = 2);

  /// Builds a storage-adaptive (generally unbalanced) trie from a sample of
  /// the key distribution: the key space is split recursively, allocating
  /// peers to each half in proportion to the sample mass falling there, so
  /// peers end up with near-equal storage load even under skewed
  /// (order-preserving) hashing. Peers sharing a leaf become replicas.
  static void BuildAdaptive(const std::vector<PGridPeer*>& peers,
                            const std::vector<Key>& sample, Rng* rng,
                            int refs_per_level = 2);

  /// (Re)wires routing references and replica links from the peers' current
  /// paths: for every peer and level l, picks up to `refs_per_level` random
  /// peers from the complementary subtree at l. Idempotent; also usable as a
  /// repair pass after ExchangeProtocol.
  static void WireRouting(const std::vector<PGridPeer*>& peers, Rng* rng,
                          int refs_per_level);
};

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_PGRID_BUILDER_H_
