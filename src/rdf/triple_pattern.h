#ifndef GRIDVINE_RDF_TRIPLE_PATTERN_H_
#define GRIDVINE_RDF_TRIPLE_PATTERN_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple.h"

namespace gridvine {

/// A triple pattern (s, p, o) where s and p are URIs or variables and o is a
/// URI, a literal, or a variable (paper Section 2.3, after RDQL). Literal
/// objects may contain '%' wildcards, matched with SQL-LIKE semantics — e.g.
/// (?x, EMBL#Organism, "%Aspergillus%").
class TriplePattern {
 public:
  TriplePattern() = default;
  TriplePattern(Term subject, Term predicate, Term object)
      : subject_(std::move(subject)),
        predicate_(std::move(predicate)),
        object_(std::move(object)) {}

  const Term& subject() const { return subject_; }
  const Term& predicate() const { return predicate_; }
  const Term& object() const { return object_; }
  const Term& at(TriplePos pos) const;

  /// Replaces the term at `pos` (used by query reformulation to swap the
  /// predicate for a mapped one).
  TriplePattern With(TriplePos pos, Term term) const;

  /// True if `t` satisfies every constant of the pattern ('%' literals via
  /// LIKE matching). Variables match anything; repeated variables must bind
  /// to equal terms.
  bool Matches(const Triple& t) const;

  /// Names of the variables appearing in the pattern, in s/p/o order,
  /// deduplicated.
  std::vector<std::string> Variables() const;

  /// True when the term at `pos` is a constant (and for literals: free of
  /// '%' wildcards), i.e. usable as an exact index key.
  bool IsExactConstant(TriplePos pos) const;

  /// Chooses the constant used to route the query (paper: "when two constant
  /// terms appear, the most specific one should be used"). Specificity order:
  /// exact subject > exact object > exact predicate > predicate (always
  /// exact-or-absent) — wildcard literals cannot be hashed. Returns nullopt
  /// for the all-variable pattern.
  std::optional<TriplePos> RoutingConstant() const;

  /// When the pattern has a literal object of the form "abc%..." (non-empty
  /// text before the first wildcard), returns that leading text. Such a
  /// constraint can be resolved as a key-space *range* under the
  /// order-preserving hash even though the object is not an exact constant.
  std::optional<std::string> ObjectRangePrefix() const;

  /// Serialization (same field encoding as Triple).
  std::string Serialize() const;
  static Result<TriplePattern> Parse(const std::string& line);

  std::string ToString() const {
    return "(" + subject_.ToString() + ", " + predicate_.ToString() + ", " +
           object_.ToString() + ")";
  }

  bool operator==(const TriplePattern& other) const {
    return subject_ == other.subject_ && predicate_ == other.predicate_ &&
           object_ == other.object_;
  }

 private:
  Term subject_ = Term::Var("s");
  Term predicate_ = Term::Var("p");
  Term object_ = Term::Var("o");
};

}  // namespace gridvine

#endif  // GRIDVINE_RDF_TRIPLE_PATTERN_H_
