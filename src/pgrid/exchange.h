#ifndef GRIDVINE_PGRID_EXCHANGE_H_
#define GRIDVINE_PGRID_EXCHANGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/key.h"
#include "common/rng.h"
#include "pgrid/pgrid_peer.h"

namespace gridvine {

/// The self-organizing P-Grid construction protocol (Aberer, CoopIS'01):
/// peers start with empty paths and their own data; random pairwise
/// encounters progressively split the key space. On meeting, two peers
///
///  * with identical paths either *split* (extend their paths with
///    complementary bits, partition the data, reference each other at the new
///    level) when they jointly hold enough data, or become *replicas* and
///    synchronize;
///  * where one path prefixes the other: the shorter-path peer specializes
///    into the complementary subtree of the longer one and they cross-link;
///  * with diverging paths: exchange routing references at the divergence
///    level (and for all shallower levels where either is short of refs).
///
/// In every encounter the pair also hands over stored entries that the
/// partner (but not the holder) is responsible for — this is how data drains
/// to its responsible peers as paths refine.
///
/// The protocol runs as a bootstrap phase (direct object interaction, no
/// simulated messages): the aim is reproducing the *resulting structure*, and
/// running it out-of-band keeps experiments on the constructed overlay clean.
class ExchangeProtocol {
 public:
  struct Options {
    /// A pair with identical paths splits while their combined relevant data
    /// exceeds this (and the key depth allows).
    size_t max_local_keys = 64;
    /// Refs a peer tries to keep per level during construction.
    int refs_per_level = 2;
  };

  ExchangeProtocol(std::vector<PGridPeer*> peers, Rng rng, Options options)
      : peers_(std::move(peers)), rng_(rng), options_(options) {}

  /// Executes `count` encounters between uniformly random peer pairs.
  void RunRandomEncounters(size_t count);

  /// One encounter between two specific peers (exposed for tests).
  void Encounter(PGridPeer* p, PGridPeer* q);

  /// Fraction of peers with a non-empty path (progress metric).
  double SpecializedFraction() const;

  /// Number of splits performed so far.
  uint64_t splits() const { return splits_; }

 private:
  void Split(PGridPeer* p, PGridPeer* q);
  void Specialize(PGridPeer* shorter, PGridPeer* longer);
  void ExchangeRefs(PGridPeer* p, PGridPeer* q);
  /// Moves entries each peer holds but the *other* is responsible for.
  void TransferData(PGridPeer* p, PGridPeer* q);

  std::vector<PGridPeer*> peers_;
  Rng rng_;
  Options options_;
  uint64_t splits_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_EXCHANGE_H_
