#!/usr/bin/env bash
# Smoke test for examples/gridvine_shell: pipes a scripted session through
# the REPL and checks the expected answers appear. Registered in ctest.
set -u
SHELL_BIN="$1"

output=$("$SHELL_BIN" <<'EOF'
help
schema EMBL bio Organism,SequenceLength
schema EMP bio SystematicName
triple <embl:A78712> <EMBL#Organism> "Aspergillus niger" .
triple <embl:A78767> <EMBL#Organism> "Aspergillus niger" .
triple <emp:NEN94295> <EMP#SystematicName> "Aspergillus niger" .
map EMBL EMP EMBL#Organism>EMP#SystematicName
query SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")
query SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")
queryplain SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")
stats
cache stats
frontend stats
mem
bogus-command
quit
EOF
)
status=$?

fail() {
  echo "FAIL: $1"
  echo "---- shell output ----"
  echo "$output"
  exit 1
}

[ $status -eq 0 ] || fail "shell exited with status $status"
echo "$output" | grep -q "ok: schema|EMBL" || fail "schema insert not confirmed"
echo "$output" | grep -q "ok: 1 correspondence(s)" || fail "mapping insert not confirmed"
# Reformulated query reaches both schemas: 3 results from 2 schemas.
echo "$output" | grep -q "3 result(s), 2 schema(s)" || fail "reformulated query wrong"
# Plain query stays within EMBL: 2 results from 1 schema.
echo "$output" | grep -q "2 result(s), 1 schema(s)" || fail "plain query wrong"
echo "$output" | grep -q "unknown command 'bogus-command'" || fail "unknown command not reported"
echo "$output" | grep -q "local DB entries" || fail "stats missing"
# The repeated reformulated query is served from the extent cache.
echo "$output" | grep -qE "extent cache: [1-9][0-9]* hit" || fail "cache stats missing hits"
echo "$output" | grep -q "submitted" || fail "frontend stats missing"
echo "$output" | grep -q "peers.overlay" || fail "mem breakdown missing"
echo "$output" | grep -q "peers.cache" || fail "mem cache breakdown missing"
echo "PASS"
