// QueryFrontend admission control: concurrency limiting, bounded queueing,
// and shed-with-Overload under saturation. The backpressure contract is that
// every submission resolves exactly once — admitted ones through the normal
// query path, shed ones synchronously with Status::Overload and zero network
// traffic — and that nothing leaks: once the heap drains there are no active
// executors or pending queries anywhere.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gridvine/gridvine_network.h"
#include "gridvine/query_frontend.h"

namespace gridvine {
namespace {

Triple T(int i, const std::string& val) {
  return Triple(Term::Uri("s" + std::to_string(i)), Term::Uri("x:p"),
                Term::Literal(val));
}

TEST(QueryFrontendTest, ShedsWithOverloadWhenQueueFull) {
  GridVineNetwork::Options o;
  o.num_peers = 8;
  o.key_depth = 10;
  o.seed = 7;
  o.peer.frontend.max_concurrent = 2;
  o.peer.frontend.max_queue = 3;
  GridVineNetwork net(o);
  std::vector<Triple> batch;
  for (int i = 0; i < 6; ++i) batch.push_back(T(i, "v"));
  ASSERT_TRUE(net.InsertTriples(0, batch).ok());
  net.Settle();

  const int kSubmissions = 10;
  struct Rec {
    int resolutions = 0;
    Status status;
  };
  std::vector<Rec> recs(kSubmissions);
  GridVinePeer* gw = net.peer(1);
  TriplePatternQuery q("x", TriplePattern(Term::Var("x"), Term::Uri("x:p"),
                                          Term::Literal("v")));
  // All submissions land in one instant: 2 start, 3 queue, 5 shed.
  net.sim()->ScheduleAt(1.0, [&] {
    for (int i = 0; i < kSubmissions; ++i) {
      Rec* r = &recs[size_t(i)];
      gw->frontend()->Submit(q, {}, [r](GridVinePeer::QueryResult res) {
        ++r->resolutions;
        r->status = res.status;
      });
    }
  });
  net.Settle();

  int ok = 0, shed = 0;
  for (const Rec& r : recs) {
    ASSERT_EQ(r.resolutions, 1);
    if (r.status.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(r.status.IsOverload()) << r.status;
      ++shed;
    }
  }
  EXPECT_EQ(ok, 5);  // max_concurrent + max_queue all complete
  EXPECT_EQ(shed, 5);

  QueryFrontend::Stats fs = gw->frontend()->stats();
  EXPECT_EQ(fs.submitted, uint64_t(kSubmissions));
  EXPECT_EQ(fs.started, 5u);
  EXPECT_EQ(fs.completed, 5u);
  EXPECT_EQ(fs.shed, 5u);
  EXPECT_EQ(fs.max_queue_depth, 3u);
  EXPECT_EQ(fs.active, 0u);
  EXPECT_EQ(fs.queued, 0u);

  // Nothing leaked anywhere: shed queries never touched the network.
  EXPECT_EQ(net.sim()->pending(), 0u);
  for (size_t p = 0; p < net.size(); ++p) {
    EXPECT_EQ(net.peer(p)->ActiveConjunctiveExecs(), 0u) << "peer " << p;
    EXPECT_EQ(net.peer(p)->PendingQueryCount(), 0u) << "peer " << p;
  }
}

TEST(QueryFrontendTest, ConjunctiveSubmissionsShareTheSameLimits) {
  GridVineNetwork::Options o;
  o.num_peers = 8;
  o.key_depth = 10;
  o.seed = 11;
  o.peer.frontend.max_concurrent = 1;
  o.peer.frontend.max_queue = 1;
  GridVineNetwork net(o);
  std::vector<Triple> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(T(i, "v"));
    batch.emplace_back(Term::Uri("s" + std::to_string(i)), Term::Uri("x:size"),
                       Term::Literal(std::to_string(i % 2)));
  }
  ASSERT_TRUE(net.InsertTriples(0, batch).ok());
  net.Settle();

  ConjunctiveQuery cq(
      {"x", "l"},
      {TriplePattern(Term::Var("x"), Term::Uri("x:p"), Term::Literal("v")),
       TriplePattern(Term::Var("x"), Term::Uri("x:size"), Term::Var("l"))});
  struct Rec {
    int resolutions = 0;
    Status status;
  };
  std::vector<Rec> recs(3);
  GridVinePeer* gw = net.peer(2);
  net.sim()->ScheduleAt(1.0, [&] {
    for (auto& r : recs) {
      Rec* rp = &r;
      gw->frontend()->SubmitConjunctive(
          cq, {}, [rp](GridVinePeer::ConjunctiveResult res) {
            ++rp->resolutions;
            rp->status = res.status;
          });
    }
  });
  net.Settle();

  ASSERT_EQ(recs[0].resolutions, 1);
  ASSERT_EQ(recs[1].resolutions, 1);
  ASSERT_EQ(recs[2].resolutions, 1);
  EXPECT_TRUE(recs[0].status.ok()) << recs[0].status;
  EXPECT_TRUE(recs[1].status.ok()) << recs[1].status;
  EXPECT_TRUE(recs[2].status.IsOverload()) << recs[2].status;
  EXPECT_EQ(gw->frontend()->stats().shed, 1u);
  for (size_t p = 0; p < net.size(); ++p) {
    EXPECT_EQ(net.peer(p)->ActiveConjunctiveExecs(), 0u) << "peer " << p;
    EXPECT_EQ(net.peer(p)->PendingQueryCount(), 0u) << "peer " << p;
  }
}

TEST(QueryFrontendTest, SequentialSubmissionsNeverShedBelowLimit) {
  GridVineNetwork::Options o;
  o.num_peers = 8;
  o.key_depth = 10;
  o.seed = 3;
  o.peer.frontend.max_concurrent = 4;
  o.peer.frontend.max_queue = 4;
  GridVineNetwork net(o);
  ASSERT_TRUE(net.InsertTriple(0, T(0, "v")).ok());
  net.Settle();

  TriplePatternQuery q("x", TriplePattern(Term::Var("x"), Term::Uri("x:p"),
                                          Term::Literal("v")));
  for (int i = 0; i < 6; ++i) {
    auto res = net.ServeFor(1, q);
    EXPECT_TRUE(res.status.ok()) << res.status;
    EXPECT_EQ(res.items.size(), 1u);
  }
  EXPECT_EQ(net.peer(1)->frontend()->stats().shed, 0u);
  EXPECT_EQ(net.peer(1)->frontend()->stats().completed, 6u);
}

}  // namespace
}  // namespace gridvine
