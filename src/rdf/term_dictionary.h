#ifndef GRIDVINE_RDF_TERM_DICTIONARY_H_
#define GRIDVINE_RDF_TERM_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "rdf/term.h"

namespace gridvine {

/// Dense integer handle for an interned Term. Ids are assigned contiguously
/// from 0 in interning order and are stable for the dictionary's lifetime.
using TermId = uint32_t;

/// Sentinel: "no term" (never a valid id).
inline constexpr TermId kNoTermId = UINT32_MAX;

/// Hash over (kind, value) — usable for unordered containers of Term.
struct TermHash {
  size_t operator()(const Term& t) const {
    size_t h = std::hash<std::string>()(t.value());
    // Splice the kind into the high bits so "uri x" != "literal x".
    return h ^ (size_t(t.kind()) * 0x9e3779b97f4a7c15ULL);
  }
};

/// String ⇄ id interning table for RDF terms.
///
/// Every distinct (kind, value) pair is stored exactly once; all further
/// occurrences are represented by a 4-byte TermId. This is the standard RDF
/// dictionary-encoding trick: the store hashes/compares fixed-width ids on
/// its hot paths and only touches strings when terms enter or leave the
/// system. Ids are never recycled — a dictionary only grows (callers that
/// erase data keep decode stability; see TripleStore's compaction notes).
///
/// Storage: term characters live in a bump Arena and each id maps to a
/// 16-byte {chars, len, kind} entry in one contiguous array; the reverse
/// index is an open-addressed table of ids. Interning a term costs one
/// arena bump + one table slot — no per-term malloc node, no per-term
/// std::string header — which is what keeps a million per-peer dictionaries
/// affordable. The old layout spent an unordered_map node plus a heap
/// string per term.
class TermDictionary {
 public:
  TermDictionary() = default;

  /// Returns the id of `term`, interning it first if absent.
  TermId Intern(const Term& term);

  /// Returns the id of `term` if already interned; nullopt otherwise.
  /// Never modifies the dictionary — the lookup path for query constants.
  std::optional<TermId> Lookup(const Term& term) const;

  /// The term for a previously returned id, materialized as a value (one
  /// string copy — same cost callers already paid when they copied the
  /// reference the old API returned). Precondition: id < size().
  Term Decode(TermId id) const;

  /// Zero-copy view of the term's characters (stable until Clear()).
  std::string_view DecodeView(TermId id) const {
    const Entry& e = entries_[id];
    return std::string_view(e.chars, e.len);
  }
  TermKind KindOf(TermId id) const { return entries_[id].kind; }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  void Clear();

  /// Bytes of heap behind the dictionary (arena chunks, entry array, index
  /// table), by capacity.
  size_t MemoryFootprint() const {
    return arena_.bytes_reserved() + entries_.capacity() * sizeof(Entry) +
           buckets_.capacity() * sizeof(TermId);
  }

 private:
  struct Entry {
    const char* chars;
    uint32_t len;
    TermKind kind;
  };

  static size_t HashOf(TermKind kind, std::string_view value) {
    // Matches TermHash for the same (kind, value): the standard guarantees
    // hash<string> and hash<string_view> agree on equal character sequences.
    return std::hash<std::string_view>()(value) ^
           (size_t(kind) * 0x9e3779b97f4a7c15ULL);
  }

  bool EntryEquals(TermId id, TermKind kind, std::string_view value) const {
    const Entry& e = entries_[id];
    return e.kind == kind && std::string_view(e.chars, e.len) == value;
  }

  /// Finds the bucket holding (kind, value) or the empty bucket where it
  /// would go. Precondition: !buckets_.empty().
  size_t FindBucket(TermKind kind, std::string_view value) const;
  void Grow();

  Arena arena_;
  std::vector<Entry> entries_;  // indexed by TermId
  /// Open-addressed (linear probe) index of ids; kNoTermId marks empty.
  /// Size is a power of two; grown at 70% load.
  std::vector<TermId> buckets_;
};

}  // namespace gridvine

#endif  // GRIDVINE_RDF_TERM_DICTIONARY_H_
