#include <gtest/gtest.h>

#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/triple_pattern.h"

namespace gridvine {
namespace {

TEST(TermTest, KindsAndAccessors) {
  Term u = Term::Uri("EMBL#Organism");
  Term l = Term::Literal("Aspergillus niger");
  Term v = Term::Var("x");
  EXPECT_TRUE(u.IsUri());
  EXPECT_TRUE(l.IsLiteral());
  EXPECT_TRUE(v.IsVariable());
  EXPECT_TRUE(u.IsConstant());
  EXPECT_TRUE(l.IsConstant());
  EXPECT_FALSE(v.IsConstant());
  EXPECT_EQ(u.value(), "EMBL#Organism");
  EXPECT_EQ(u.ToString(), "<EMBL#Organism>");
  EXPECT_EQ(l.ToString(), "\"Aspergillus niger\"");
  EXPECT_EQ(v.ToString(), "?x");
}

TEST(TermTest, EqualityDistinguishesKinds) {
  EXPECT_NE(Term::Uri("a"), Term::Literal("a"));
  EXPECT_EQ(Term::Uri("a"), Term::Uri("a"));
  EXPECT_NE(Term::Var("x"), Term::Var("y"));
}

TEST(TripleTest, ValidateRules) {
  EXPECT_TRUE(Triple(Term::Uri("s"), Term::Uri("p"), Term::Literal("o"))
                  .Validate()
                  .ok());
  EXPECT_TRUE(Triple(Term::Uri("s"), Term::Uri("p"), Term::Uri("o"))
                  .Validate()
                  .ok());
  EXPECT_FALSE(Triple(Term::Literal("s"), Term::Uri("p"), Term::Literal("o"))
                   .Validate()
                   .ok());
  EXPECT_FALSE(Triple(Term::Uri("s"), Term::Literal("p"), Term::Literal("o"))
                   .Validate()
                   .ok());
  EXPECT_FALSE(Triple(Term::Uri("s"), Term::Uri("p"), Term::Var("o"))
                   .Validate()
                   .ok());
  EXPECT_FALSE(Triple(Term::Uri(""), Term::Uri("p"), Term::Literal("o"))
                   .Validate()
                   .ok());
}

TEST(TripleTest, SerializeParseRoundTrip) {
  Triple t(Term::Uri("gv://0110-a1/seq9"), Term::Uri("EMBL#Organism"),
           Term::Literal("Aspergillus niger"));
  auto parsed = Triple::Parse(t.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, t);
}

TEST(TripleTest, RoundTripWithSpecialCharacters) {
  Triple t(Term::Uri("s"), Term::Uri("p"),
           Term::Literal("value\twith\ttabs\\and\\slashes"));
  auto parsed = Triple::Parse(t.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->object().value(), "value\twith\ttabs\\and\\slashes");
}

TEST(TripleTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Triple::Parse("not a triple").ok());
  EXPECT_FALSE(Triple::Parse("U:a\tU:b").ok());
  EXPECT_FALSE(Triple::Parse("U:a\tU:b\tX:c").ok());
  EXPECT_FALSE(Triple::Parse("U:a\tU:b\tL:c\tL:d").ok());
  // Variable in triple fails RDF validation.
  EXPECT_FALSE(Triple::Parse("V:x\tU:b\tL:c").ok());
  // Dangling escape.
  EXPECT_FALSE(Triple::Parse("U:a\tU:b\tL:c\\").ok());
}

TEST(TripleTest, AtPositions) {
  Triple t(Term::Uri("s"), Term::Uri("p"), Term::Literal("o"));
  EXPECT_EQ(t.at(TriplePos::kSubject).value(), "s");
  EXPECT_EQ(t.at(TriplePos::kPredicate).value(), "p");
  EXPECT_EQ(t.at(TriplePos::kObject).value(), "o");
}

TEST(GlobalIdTest, UniquePerPeerAndName) {
  std::string a = MakeGlobalId("0110", "seq1");
  std::string b = MakeGlobalId("0111", "seq1");
  std::string c = MakeGlobalId("0110", "seq2");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, MakeGlobalId("0110", "seq1"));
  EXPECT_TRUE(a.find("gv://0110-") == 0) << a;
  EXPECT_TRUE(a.find("/seq1") != std::string::npos);
  // Empty path (unspecialized peer) still yields a valid id.
  EXPECT_TRUE(MakeGlobalId("", "x").find("gv://root-") == 0);
}

TEST(TriplePatternTest, MatchesConstantsAndVariables) {
  Triple t(Term::Uri("s1"), Term::Uri("EMBL#Organism"),
           Term::Literal("Aspergillus niger"));
  EXPECT_TRUE(TriplePattern(Term::Var("x"), Term::Uri("EMBL#Organism"),
                            Term::Var("y"))
                  .Matches(t));
  EXPECT_TRUE(TriplePattern(Term::Uri("s1"), Term::Var("p"), Term::Var("o"))
                  .Matches(t));
  EXPECT_FALSE(TriplePattern(Term::Uri("s2"), Term::Var("p"), Term::Var("o"))
                   .Matches(t));
  EXPECT_FALSE(
      TriplePattern(Term::Var("x"), Term::Uri("EMP#Name"), Term::Var("y"))
          .Matches(t));
}

TEST(TriplePatternTest, LikeMatchingOnLiterals) {
  Triple t(Term::Uri("s1"), Term::Uri("p"), Term::Literal("Aspergillus niger"));
  TriplePattern contains(Term::Var("x"), Term::Uri("p"),
                         Term::Literal("%Aspergillus%"));
  EXPECT_TRUE(contains.Matches(t));
  TriplePattern nomatch(Term::Var("x"), Term::Uri("p"),
                        Term::Literal("%Penicillium%"));
  EXPECT_FALSE(nomatch.Matches(t));
  // '%' pattern against a URI object does not match.
  Triple t2(Term::Uri("s1"), Term::Uri("p"), Term::Uri("Aspergillus"));
  EXPECT_FALSE(contains.Matches(t2));
}

TEST(TriplePatternTest, RepeatedVariableMustBindConsistently) {
  TriplePattern p(Term::Var("x"), Term::Uri("sameAs"), Term::Var("x"));
  EXPECT_TRUE(p.Matches(
      Triple(Term::Uri("a"), Term::Uri("sameAs"), Term::Uri("a"))));
  EXPECT_FALSE(p.Matches(
      Triple(Term::Uri("a"), Term::Uri("sameAs"), Term::Uri("b"))));
}

TEST(TriplePatternTest, VariablesListed) {
  TriplePattern p(Term::Var("x"), Term::Uri("p"), Term::Var("y"));
  EXPECT_EQ(p.Variables(), (std::vector<std::string>{"x", "y"}));
  TriplePattern dup(Term::Var("x"), Term::Var("p"), Term::Var("x"));
  EXPECT_EQ(dup.Variables(), (std::vector<std::string>{"x", "p"}));
}

TEST(TriplePatternTest, IsExactConstant) {
  TriplePattern p(Term::Uri("s"), Term::Var("p"),
                  Term::Literal("%wildcard%"));
  EXPECT_TRUE(p.IsExactConstant(TriplePos::kSubject));
  EXPECT_FALSE(p.IsExactConstant(TriplePos::kPredicate));
  EXPECT_FALSE(p.IsExactConstant(TriplePos::kObject));
  TriplePattern q(Term::Var("s"), Term::Uri("p"), Term::Literal("exact"));
  EXPECT_TRUE(q.IsExactConstant(TriplePos::kObject));
}

TEST(TriplePatternTest, RoutingConstantSpecificityOrder) {
  // Subject beats object beats predicate.
  EXPECT_EQ(*TriplePattern(Term::Uri("s"), Term::Uri("p"), Term::Literal("o"))
                 .RoutingConstant(),
            TriplePos::kSubject);
  EXPECT_EQ(*TriplePattern(Term::Var("x"), Term::Uri("p"), Term::Literal("o"))
                 .RoutingConstant(),
            TriplePos::kObject);
  EXPECT_EQ(*TriplePattern(Term::Var("x"), Term::Uri("p"), Term::Var("y"))
                 .RoutingConstant(),
            TriplePos::kPredicate);
  // Wildcard literal cannot be the routing key: falls back to predicate.
  EXPECT_EQ(*TriplePattern(Term::Var("x"), Term::Uri("p"),
                           Term::Literal("%Aspergillus%"))
                 .RoutingConstant(),
            TriplePos::kPredicate);
  // All-variable pattern has none.
  EXPECT_FALSE(TriplePattern(Term::Var("x"), Term::Var("p"), Term::Var("y"))
                   .RoutingConstant()
                   .has_value());
}

TEST(TriplePatternTest, SerializeParseRoundTrip) {
  TriplePattern p(Term::Var("x"), Term::Uri("EMBL#Organism"),
                  Term::Literal("%Aspergillus%"));
  auto parsed = TriplePattern::Parse(p.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, p);
}

TEST(TriplePatternTest, WithReplacesPosition) {
  TriplePattern p(Term::Var("x"), Term::Uri("A#p"), Term::Var("y"));
  TriplePattern q = p.With(TriplePos::kPredicate, Term::Uri("B#q"));
  EXPECT_EQ(q.predicate().value(), "B#q");
  EXPECT_EQ(p.predicate().value(), "A#p");  // original untouched
  EXPECT_EQ(q.subject(), p.subject());
}

}  // namespace
}  // namespace gridvine
