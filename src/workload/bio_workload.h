#ifndef GRIDVINE_WORKLOAD_BIO_WORKLOAD_H_
#define GRIDVINE_WORKLOAD_BIO_WORKLOAD_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mapping/schema_mapping.h"
#include "query/query.h"
#include "rdf/triple.h"
#include "schema/schema.h"

namespace gridvine {

/// Synthetic stand-in for the paper's EBI bioinformatic corpus (Section 4):
/// `num_schemas` (default 50) protein/nucleotide-sequence schemas whose
/// attributes are schema-specific *name variants* of a shared concept_name
/// vocabulary (organism, accession, description, ...), plus entity data with
/// *shared references*: each entity (a protein/nucleotide sequence with a
/// global URI) is described under several schemas, with identical attribute
/// values for the same concept_name.
///
/// The generator also emits the evaluation ground truth the demo relies on:
/// which attribute realizes which concept_name (for mapping precision), correct
/// pairwise mappings ("manual" mappings), deliberately erroneous mappings
/// (for the Bayesian deprecation experiment), and per-query expected results
/// (for recall).
class BioWorkload {
 public:
  struct Options {
    int num_schemas = 50;
    /// Attributes per schema, sampled uniformly in [min, max] concepts.
    int min_attrs = 6;
    int max_attrs = 10;
    int num_entities = 500;
    /// Entities described by each schema (random subset; overlaps create the
    /// shared references that drive candidate selection).
    int entities_per_schema = 60;
    /// Probability that a value is perturbed per (schema, entity, concept_name) —
    /// makes value-set matching realistic rather than trivial.
    double value_noise = 0.05;
    std::string domain = "protein-sequences";
    uint64_t seed = 42;
  };

  explicit BioWorkload(Options options);

  const Options& options() const { return options_; }
  const std::vector<Schema>& schemas() const { return schemas_; }

  /// Concept realized by an attribute URI (ground truth), or "".
  std::string ConceptOf(const std::string& attr_uri) const;

  /// The attribute URI realizing `concept_name` in schema `schema_idx`, or "".
  std::string AttributeFor(size_t schema_idx, const std::string& concept_name) const;

  /// Triples emitted by schema `schema_idx` (one per described entity and
  /// attribute).
  const std::vector<Triple>& TriplesFor(size_t schema_idx) const {
    return triples_[schema_idx];
  }
  size_t TotalTriples() const;

  /// The entities described by a schema (global subject URIs).
  const std::vector<std::string>& EntitiesOf(size_t schema_idx) const {
    return schema_entities_[schema_idx];
  }

  /// The ground-truth ("manual") mapping between two schemas: every concept_name
  /// they share becomes a correspondence. Bidirectional, confidence 1.
  SchemaMapping GroundTruthMapping(size_t src_idx, size_t dst_idx,
                                   const std::string& id) const;

  /// An intentionally wrong mapping: correspondences pair attributes of
  /// *different* concepts (used to test Bayesian deprecation).
  SchemaMapping ErroneousMapping(size_t src_idx, size_t dst_idx,
                                 const std::string& id, Rng* rng) const;

  /// Fraction of `mapping`'s correspondences that link same-concept_name
  /// attributes (mapping precision against ground truth).
  double MappingPrecision(const SchemaMapping& mapping) const;

  /// A generated evaluation query plus its global expected answer.
  struct GeneratedQuery {
    TriplePatternQuery query;
    std::string concept_name;
    std::string schema;
    /// Entity URIs that match the constraint under ANY schema that realizes
    /// the concept_name (what a fully interoperable network would return).
    std::set<std::string> expected_subjects;
  };

  /// Builds a selective query against schema `schema_idx`: constrains a
  /// random concept attribute with a '%'-pattern over a real value. Pass
  /// `force_concept` (e.g. "organism", which every schema realizes) to pin
  /// the queried concept.
  GeneratedQuery MakeQuery(size_t schema_idx, Rng* rng,
                           const std::string& force_concept = "") const;

  /// Recall of a result set (distinct subject URIs found) against a query's
  /// global expected answer; 1.0 when nothing was expected.
  static double Recall(const GeneratedQuery& gq,
                       const std::set<std::string>& found_subjects);

  /// Outcome of a schema-evolution step: a fraction of one schema's
  /// attributes are renamed to *different* name variants of the same
  /// concepts (semantics unchanged, local names move — a provider revising
  /// its export format). The workload's ground truth, schemas() and
  /// TriplesFor() are updated in place; the record carries everything a
  /// harness needs to replay the change on a live network: UpsertSchema
  /// with `new_schema`, remove `removed_triples`, insert `added_triples`.
  /// Mappings whose correspondences reference the old URIs become stale and
  /// must be deprecated/re-derived (SelfOrganizer::RepairStaleMappings).
  struct SchemaEvolution {
    size_t schema_idx = 0;
    Schema old_schema;
    Schema new_schema;
    /// Renamed attribute URIs, old -> new.
    std::vector<std::pair<std::string, std::string>> renamed_uris;
    std::vector<Triple> removed_triples;
    std::vector<Triple> added_triples;
  };

  /// Renames ~`rename_fraction` of schema `schema_idx`'s attributes (at
  /// least one) to a different variant of the same concept; attributes whose
  /// concept has a single variant are skipped. Deterministic given `rng`.
  SchemaEvolution EvolveSchema(size_t schema_idx, double rename_fraction,
                               Rng* rng);

  /// Concept vocabulary (canonical names).
  static std::vector<std::string> ConceptNames();

 private:
  struct Concept {
    std::string name;
    std::vector<std::string> variants;
    std::vector<std::string> value_pool;
  };

  static std::vector<Concept> BuildVocabulary();
  std::string ValueFor(size_t entity_idx, const Concept& concept_name, Rng* rng);

  Options options_;
  std::vector<Concept> vocabulary_;
  std::vector<Schema> schemas_;
  /// schema idx -> concept_name name -> local attribute name.
  std::vector<std::map<std::string, std::string>> schema_concepts_;
  std::map<std::string, std::string> attr_to_concept_;
  std::vector<std::string> entity_uris_;
  /// entity idx -> concept_name -> canonical value.
  std::vector<std::map<std::string, std::string>> entity_profiles_;
  std::vector<std::vector<std::string>> schema_entities_;
  std::vector<std::vector<Triple>> triples_;
};

}  // namespace gridvine

#endif  // GRIDVINE_WORKLOAD_BIO_WORKLOAD_H_
