#ifndef GRIDVINE_PGRID_MAINTENANCE_H_
#define GRIDVINE_PGRID_MAINTENANCE_H_

#include <cstdint>
#include <set>
#include <unordered_map>

#include "common/rng.h"
#include "pgrid/pgrid_peer.h"
#include "sim/simulator.h"

namespace gridvine {

/// Keeps one peer's routing table healthy under churn — the continuous
/// repair that lets P-Grid remain "efficient even in highly unreliable,
/// dynamic environments" (paper Section 2.1). Each maintenance round:
///
///   1. *Probe*: ping every routing reference and replica. References that
///      miss the probe deadline are dropped (they may be re-learned later).
///   2. *Refill*: if any level holds fewer than `min_refs_per_level`
///      references, ask a random live contact for its contacts (ref gossip),
///      then probe the unknown candidates; a candidate's ping response
///      carries its current path, which places it at the correct level of
///      this peer's table (or in the replica set when paths are equal).
///
/// The agent is purely local: it sees only message responses, never global
/// state.
class MaintenanceAgent {
 public:
  struct Options {
    /// Seconds between maintenance rounds.
    SimTime period = 30.0;
    /// A probed peer failing to answer within this window misses the probe.
    SimTime probe_timeout = 3.0;
    /// Levels holding fewer refs than this trigger the refill phase.
    int min_refs_per_level = 2;
    /// Consecutive missed probes before a reference is evicted — absorbs
    /// transient churn (a peer that is briefly offline keeps its slot).
    int evict_after_misses = 2;
    /// Evicted contacts are parked and re-probed for re-adoption (a churned
    /// peer that returns gets its slot back). Cap on the parking set.
    size_t max_parked = 32;
  };

  MaintenanceAgent(Simulator* sim, PGridPeer* peer, Rng rng, Options options);

  MaintenanceAgent(const MaintenanceAgent&) = delete;
  MaintenanceAgent& operator=(const MaintenanceAgent&) = delete;

  /// Starts periodic rounds (first round after one period).
  void Start();
  void Stop() { running_ = false; }

  /// Runs one round immediately (also used by tests).
  void RunRound();

  struct Stats {
    uint64_t rounds = 0;
    uint64_t probes_sent = 0;
    uint64_t refs_removed = 0;
    uint64_t refs_added = 0;
    uint64_t replicas_added = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  enum class ProbeKind { kExistingRef, kCandidate };

  void ScheduleNext();
  void Probe(NodeId target, ProbeKind kind);
  /// Returns true when `body` was a maintenance-protocol message.
  bool OnMessage(NodeId from, const MessageBody& body);
  void OnPong(const PingResponse& pong);
  /// Classifies a live peer against our path and adopts it if useful.
  void Adopt(NodeId id, const Key& path);

  Simulator* sim_;
  PGridPeer* peer_;
  Rng rng_;
  Options options_;
  bool running_ = false;
  uint64_t next_nonce_ = 1;
  struct PendingProbe {
    NodeId target;
    ProbeKind kind;
  };
  std::unordered_map<uint64_t, PendingProbe> pending_probes_;
  /// Consecutive missed probes per live contact.
  std::unordered_map<NodeId, int> miss_counts_;
  /// Evicted contacts kept around for re-adoption probing.
  std::set<NodeId> parked_;
  uint64_t pending_refs_nonce_ = 0;
  Stats stats_;
};

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_MAINTENANCE_H_
