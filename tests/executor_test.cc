#include "query/exec/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "query/exec/bind.h"
#include "query/planner.h"
#include "store/binding_codec.h"
#include "store/triple_store.h"

namespace gridvine {
namespace {

TriplePattern P(Term s, Term p, Term o) {
  return TriplePattern(std::move(s), std::move(p), std::move(o));
}

/// A scripted QueryBackend over an in-memory TripleStore. `defer` queues the
/// callbacks so tests can observe concurrent dispatch and control delivery
/// order; otherwise calls answer synchronously.
class MockBackend : public QueryBackend {
 public:
  TripleStore store;
  bool defer = false;
  Status scan_status = Status::OK();
  Status bound_status = Status::OK();

  int scans = 0;
  int bound_scans = 0;
  int exists_calls = 0;
  std::vector<size_t> probe_counts;

  void Scan(const TriplePattern& pattern, ScanCallback cb) override {
    ++scans;
    ScanResult r;
    r.status = scan_status;
    if (r.status.ok()) r.rows = store.MatchPattern(pattern);
    Deliver([cb, r = std::move(r)]() mutable { cb(std::move(r)); });
  }

  void BoundScan(const TriplePattern& pattern, std::vector<BindingSet> probes,
                 BoundScanCallback cb) override {
    ++bound_scans;
    probe_counts.push_back(probes.size());
    BoundScanResult r;
    r.status = bound_status;
    if (r.status.ok()) {
      for (uint32_t pi = 0; pi < probes.size(); ++pi) {
        TriplePattern bound = SubstituteBindings(pattern, probes[pi]);
        for (auto& row : store.MatchPattern(bound)) {
          r.rows.push_back({pi, std::move(row)});
        }
      }
    }
    Deliver([cb, r = std::move(r)]() mutable { cb(std::move(r)); });
  }

  void Exists(const TriplePattern& pattern,
              std::function<void(Result<bool>)> cb) override {
    ++exists_calls;
    bool found = !store.MatchPattern(pattern).empty();
    Deliver([cb, found]() { cb(found); });
  }

  size_t Queued() const { return queued_.size(); }
  void Flush() {
    while (!queued_.empty()) {
      auto f = std::move(queued_.front());
      queued_.erase(queued_.begin());
      f();
    }
  }

 private:
  void Deliver(std::function<void()> f) {
    if (defer) {
      queued_.push_back(std::move(f));
    } else {
      f();
    }
  }

  std::vector<std::function<void()>> queued_;
};

/// Runs `query` over `backend` with the given plan mode; requires completion
/// (all mock answers are synchronous unless deferred).
ConjunctiveExecutor::ExecResult Execute(const ConjunctiveQuery& query,
                                        MockBackend* backend, bool bind_join,
                                        int* done_count = nullptr) {
  PlanOptions popts;
  popts.bind_join = bind_join;
  ConjunctiveExecutor exec(query, PlanPhysical(query, popts), backend);
  ConjunctiveExecutor::ExecResult out;
  bool done = false;
  int count = 0;
  exec.Run([&](ConjunctiveExecutor::ExecResult r) {
    out = std::move(r);
    done = true;
    ++count;
  });
  backend->Flush();
  EXPECT_TRUE(done);
  if (done_count != nullptr) *done_count = count;
  return out;
}

std::set<std::string> RowSet(const std::vector<BindingSet>& rows) {
  std::set<std::string> out;
  for (const auto& row : rows) out.insert(SerializeBindings({row}));
  return out;
}

// 12 people, each with a dept and a level; "eng" is selective (2 members),
// so a bind-join on a selective first pattern ships far fewer rows than
// collecting the wide e:level extent.
void LoadEmployees(TripleStore* store) {
  for (int i = 0; i < 12; ++i) {
    std::string who = "e:p" + std::to_string(i);
    ASSERT_TRUE(store
                    ->Insert(Triple(Term::Uri(who), Term::Uri("e:dept"),
                                    Term::Literal(i < 2 ? "eng" : "ops")))
                    .ok());
    ASSERT_TRUE(store
                    ->Insert(Triple(Term::Uri(who), Term::Uri("e:level"),
                                    Term::Literal(std::to_string(i / 2))))
                    .ok());
  }
}

TEST(ConjunctiveExecutorTest, BindJoinMatchesCollectThenJoin) {
  MockBackend backend;
  LoadEmployees(&backend.store);
  ConjunctiveQuery q(
      {"x", "l"},
      {P(Term::Var("x"), Term::Uri("e:dept"), Term::Literal("eng")),
       P(Term::Var("x"), Term::Uri("e:level"), Term::Var("l"))});

  auto bind = Execute(q, &backend, /*bind_join=*/true);
  MockBackend backend2;
  LoadEmployees(&backend2.store);
  auto collect = Execute(q, &backend2, /*bind_join=*/false);

  ASSERT_TRUE(bind.status.ok());
  ASSERT_TRUE(collect.status.ok());
  EXPECT_EQ(RowSet(bind.rows), RowSet(collect.rows));
  EXPECT_EQ(bind.rows.size(), 2u);  // p0, p1
  EXPECT_EQ(backend.bound_scans, 1);
  EXPECT_EQ(backend.scans, 1);
  EXPECT_EQ(backend2.bound_scans, 0);
  EXPECT_EQ(backend2.scans, 2);
  // Bind-join ships only the second pattern's matching rows; the collect
  // baseline ships its full extent.
  EXPECT_LT(bind.metrics.RowsShipped(), collect.metrics.RowsShipped());
}

TEST(ConjunctiveExecutorTest, ProbesAreDeduplicated) {
  MockBackend backend;
  LoadEmployees(&backend.store);
  // ?x ranges over 6 people but the join column of the second pattern is
  // ?d with only 2 distinct values.
  ConjunctiveQuery q(
      {"x", "d"},
      {P(Term::Var("x"), Term::Uri("e:dept"), Term::Var("d")),
       P(Term::Var("y"), Term::Uri("e:dept"), Term::Var("d"))});
  auto res = Execute(q, &backend, /*bind_join=*/true);
  ASSERT_TRUE(res.status.ok());
  ASSERT_EQ(backend.probe_counts.size(), 1u);
  EXPECT_EQ(backend.probe_counts[0], 2u);  // "eng", "ops"
  EXPECT_EQ(res.metrics.probe_rows, 2u);
}

TEST(ConjunctiveExecutorTest, EmptyFirstScanShortCircuitsGroup) {
  MockBackend backend;
  LoadEmployees(&backend.store);
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Var("x"), Term::Uri("e:dept"), Term::Literal("nosuch")),
       P(Term::Var("x"), Term::Uri("e:level"), Term::Var("l"))});
  auto res = Execute(q, &backend, /*bind_join=*/true);
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(res.rows.empty());
  // The bind-join step never runs once the group's accumulator is empty.
  EXPECT_EQ(backend.bound_scans, 0);
}

TEST(ConjunctiveExecutorTest, ExistenceCheckTrueActsAsJoinIdentity) {
  MockBackend backend;
  LoadEmployees(&backend.store);
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Uri("e:p0"), Term::Uri("e:dept"), Term::Literal("eng")),
       P(Term::Var("x"), Term::Uri("e:level"), Term::Literal("0"))});
  auto res = Execute(q, &backend, /*bind_join=*/true);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(backend.exists_calls, 1);
  EXPECT_EQ(res.rows.size(), 2u);  // p0 and p1 have level 0
  EXPECT_EQ(res.metrics.existence_checks, 1u);
}

TEST(ConjunctiveExecutorTest, ExistenceCheckFalseEmptiesResult) {
  MockBackend backend;
  LoadEmployees(&backend.store);
  ConjunctiveQuery q(
      {"x"},
      {P(Term::Uri("e:p0"), Term::Uri("e:dept"), Term::Literal("ops")),
       P(Term::Var("x"), Term::Uri("e:level"), Term::Literal("0"))});
  auto res = Execute(q, &backend, /*bind_join=*/true);
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(res.rows.empty());
}

TEST(ConjunctiveExecutorTest, DisconnectedGroupsRunConcurrently) {
  MockBackend backend;
  backend.defer = true;
  LoadEmployees(&backend.store);
  ConjunctiveQuery q(
      {"x", "y"},
      {P(Term::Var("x"), Term::Uri("e:dept"), Term::Literal("eng")),
       P(Term::Var("y"), Term::Uri("e:dept"), Term::Literal("ops"))});
  PlanOptions popts;
  ConjunctiveExecutor exec(q, PlanPhysical(q, popts), &backend);
  bool done = false;
  ConjunctiveExecutor::ExecResult out;
  exec.Run([&](ConjunctiveExecutor::ExecResult r) {
    out = std::move(r);
    done = true;
  });
  // Both groups issued their scans before either answered — concurrent, not
  // serial, dispatch.
  EXPECT_EQ(backend.scans, 2);
  EXPECT_EQ(backend.Queued(), 2u);
  EXPECT_FALSE(done);
  backend.Flush();
  ASSERT_TRUE(done);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.rows.size(), 20u);  // 2 eng x 10 ops cross product
}

TEST(ConjunctiveExecutorTest, FailedGroupDoesNotAbortSiblings) {
  MockBackend backend;
  backend.defer = true;
  backend.bound_status = Status::Timeout("injected");
  LoadEmployees(&backend.store);
  ConjunctiveQuery q(
      {"x", "y"},
      // Group A needs a bind-join (which will time out); group B is a plain
      // scan that must still complete before the result fires.
      {P(Term::Var("x"), Term::Uri("e:dept"), Term::Literal("eng")),
       P(Term::Var("x"), Term::Uri("e:level"), Term::Var("l")),
       P(Term::Var("y"), Term::Uri("e:dept"), Term::Literal("ops"))});
  PlanOptions popts;
  ConjunctiveExecutor exec(q, PlanPhysical(q, popts), &backend);
  int done_count = 0;
  ConjunctiveExecutor::ExecResult out;
  exec.Run([&](ConjunctiveExecutor::ExecResult r) {
    out = std::move(r);
    ++done_count;
  });
  while (backend.Queued() > 0) backend.Flush();
  EXPECT_EQ(done_count, 1);
  EXPECT_TRUE(out.status.IsTimeout());
  EXPECT_TRUE(out.rows.empty());
}

TEST(ConjunctiveExecutorTest, ScanTimeoutPropagates) {
  MockBackend backend;
  backend.scan_status = Status::Timeout("injected");
  ConjunctiveQuery q({"x"},
                     {P(Term::Var("x"), Term::Uri("e:dept"), Term::Var("d"))});
  int done_count = 0;
  auto res = Execute(q, &backend, /*bind_join=*/true, &done_count);
  EXPECT_EQ(done_count, 1);
  EXPECT_TRUE(res.status.IsTimeout());
}

/// The differential check the acceptance criteria ask for: on randomized
/// stores, bind-join and collect-then-join produce identical result sets.
TEST(ConjunctiveExecutorTest, DifferentialRandomizedStores) {
  const std::vector<ConjunctiveQuery> queries = {
      ConjunctiveQuery({"x", "l"},
                       {P(Term::Var("x"), Term::Uri("s:type"),
                          Term::Literal("gadget")),
                        P(Term::Var("x"), Term::Uri("s:size"), Term::Var("l"))}),
      ConjunctiveQuery(
          {"x", "y"},
          {P(Term::Var("x"), Term::Uri("s:link"), Term::Var("y")),
           P(Term::Var("y"), Term::Uri("s:type"), Term::Literal("widget"))}),
      ConjunctiveQuery(
          {"x", "l", "y"},
          {P(Term::Var("x"), Term::Uri("s:type"), Term::Literal("gadget")),
           P(Term::Var("x"), Term::Uri("s:link"), Term::Var("y")),
           P(Term::Var("y"), Term::Uri("s:size"), Term::Var("l"))}),
  };
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<Triple> triples;
    for (int e = 0; e < 40; ++e) {
      Term subj = Term::Uri("s:e" + std::to_string(e));
      triples.emplace_back(
          subj, Term::Uri("s:type"),
          Term::Literal(rng.Bernoulli(0.2) ? "gadget" : "widget"));
      triples.emplace_back(
          subj, Term::Uri("s:size"),
          Term::Literal(std::to_string(rng.UniformInt(1, 5))));
      if (rng.Bernoulli(0.5)) {
        triples.emplace_back(
            subj, Term::Uri("s:link"),
            Term::Uri("s:e" + std::to_string(rng.UniformInt(0, 39))));
      }
    }
    for (const auto& q : queries) {
      MockBackend a, b;
      for (const Triple& t : triples) {
        ASSERT_TRUE(a.store.Insert(t).ok());
        ASSERT_TRUE(b.store.Insert(t).ok());
      }
      auto bind = Execute(q, &a, /*bind_join=*/true);
      auto collect = Execute(q, &b, /*bind_join=*/false);
      ASSERT_TRUE(bind.status.ok());
      ASSERT_TRUE(collect.status.ok());
      EXPECT_EQ(RowSet(bind.rows), RowSet(collect.rows))
          << "seed=" << seed << " query=" << q.ToString();
    }
  }
}

}  // namespace
}  // namespace gridvine
