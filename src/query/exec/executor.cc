#include "query/exec/executor.h"

#include <utility>

#include "query/exec/bind.h"
#include "store/binding_codec.h"

namespace gridvine {

ConjunctiveExecutor::ConjunctiveExecutor(const ConjunctiveQuery& query,
                                         PhysicalPlan plan,
                                         QueryBackend* backend)
    : query_(query), plan_(std::move(plan)), backend_(backend) {
  groups_.resize(plan_.groups.size());
  observed_extents_.assign(query_.patterns().size(), -1.0);
}

void ConjunctiveExecutor::EnableAdaptive(PlanOptions plan_options,
                                         double divergence_factor) {
  adaptive_ = divergence_factor > 0;
  adaptive_options_ = std::move(plan_options);
  divergence_ = divergence_factor;
}

const TriplePattern& ConjunctiveExecutor::PatternOf(
    const PlanStep& step) const {
  return query_.patterns()[step.pattern];
}

void ConjunctiveExecutor::EnableTracing(Tracer* tracer, TraceCtx parent) {
  tracer_ = tracer;
  trace_parent_ = parent;
}

TraceCtx ConjunctiveExecutor::StartOp(std::string_view name) {
  if (tracer_ == nullptr || !tracer_->enabled()) return TraceCtx{};
  TraceCtx span = tracer_->StartSpan(name, trace_parent_);
  backend_->SetCallCtx(span);
  return span;
}

void ConjunctiveExecutor::EndOp(TraceCtx* span, std::string_view key,
                                double value) {
  if (!span->valid()) return;
  tracer_->Annotate(*span, key, value);
  tracer_->EndSpan(*span);
  *span = TraceCtx{};
}

void ConjunctiveExecutor::Run(DoneCallback done) {
  done_ = std::move(done);
  if (groups_.empty()) {
    Finalize();
    return;
  }
  unsettled_groups_ = groups_.size();
  // `this` may be destroyed from inside the last StepGroup if every group
  // settles synchronously — no member access after the loop.
  const size_t n = groups_.size();
  for (size_t gi = 0; gi < n; ++gi) StepGroup(gi);
}

void ConjunctiveExecutor::StepGroup(size_t gi) {
  while (groups_[gi].phase == GroupPhase::kRunning) {
    GroupState& g = groups_[gi];
    const PlanGroup& pg = plan_.groups[gi];
    if (g.step >= pg.steps.size()) {
      GroupDone(gi, Status::OK());
      return;
    }
    const PlanStep step = pg.steps[g.step];
    switch (step.kind) {
      case OpKind::kRemoteScan: {
        g.step++;
        g.phase = GroupPhase::kWaiting;
        g.scan_pattern = step.pattern;
        metrics_.remote_scans++;
        g.op_span = StartOp("exec.scan");
        backend_->Scan(PatternOf(step),
                       [this, gi](QueryBackend::ScanResult r) {
                         OnScan(gi, std::move(r));
                       });
        return;
      }
      case OpKind::kExistenceCheck: {
        g.step++;
        g.phase = GroupPhase::kWaiting;
        metrics_.existence_checks++;
        g.op_span = StartOp("exec.exists");
        backend_->Exists(PatternOf(step), [this, gi](Result<bool> r) {
          OnExists(gi, std::move(r));
        });
        return;
      }
      case OpKind::kLocalJoin: {
        if (!g.acc_init) {
          g.acc = std::move(g.pending);
          g.acc_init = true;
        } else {
          g.acc = TripleStore::Join(g.acc, g.pending);
        }
        g.pending.clear();
        g.step++;
        ++g.patterns_done;
        if (!g.acc.empty()) MaybeReplan(gi);
        if (g.acc.empty()) {
          // Empty intermediate result. Steps that consume the accumulator
          // (bind-joins) have nothing to dispatch, so when only those remain
          // the group finishes early — binding propagation's short-circuit.
          // Remote scans do not depend on the accumulator: collect-then-join
          // fetches every extent regardless, exactly the shipping cost the
          // bind-vs-collect comparison is about, so they still execute.
          bool remaining_need_bindings = true;
          for (size_t si = g.step; si < pg.steps.size(); ++si) {
            if (pg.steps[si].kind == OpKind::kRemoteScan) {
              remaining_need_bindings = false;
              break;
            }
          }
          if (remaining_need_bindings) {
            GroupDone(gi, Status::OK());
            return;
          }
        }
        break;
      }
      case OpKind::kBindJoin: {
        if (g.acc.empty()) {
          // Nothing to probe with; the join stays empty.
          g.step++;
          break;
        }
        const TriplePattern& pat = PatternOf(step);
        std::vector<std::string> shared = SharedVars(pat, g.acc[0]);
        std::vector<BindingSet> probes;
        g.probe_members.clear();
        if (shared.empty()) {
          // No join columns (defensive — planner orders groups so each
          // bind-join connects): one empty probe stands for every row,
          // which merges as a cross product.
          probes.push_back(BindingSet{});
          g.probe_members.emplace_back();
          for (size_t ri = 0; ri < g.acc.size(); ++ri) {
            g.probe_members[0].push_back(ri);
          }
        } else {
          BindingDeduper dd;
          for (size_t ri = 0; ri < g.acc.size(); ++ri) {
            BindingSet probe = RestrictTo(g.acc[ri], shared);
            bool fresh = false;
            size_t pi = dd.Intern(probe, &fresh);
            if (fresh) {
              probes.push_back(std::move(probe));
              g.probe_members.emplace_back();
            }
            g.probe_members[pi].push_back(ri);
          }
        }
        g.step++;
        g.phase = GroupPhase::kWaiting;
        metrics_.bind_joins++;
        metrics_.probe_rows += probes.size();
        g.op_span = StartOp("exec.bind_join");
        if (g.op_span.valid()) {
          tracer_->Annotate(g.op_span, "probes", double(probes.size()));
        }
        backend_->BoundScan(pat, std::move(probes),
                            [this, gi](QueryBackend::BoundScanResult r) {
                              OnBoundScan(gi, std::move(r));
                            });
        return;
      }
      case OpKind::kProject:
      case OpKind::kDedup:
        // Tail-only operators; a plan never places them inside a group.
        g.step++;
        break;
    }
  }
}

void ConjunctiveExecutor::OnScan(size_t gi, QueryBackend::ScanResult r) {
  GroupState& g = groups_[gi];
  if (!r.status.ok()) {
    EndOp(&g.op_span, "error", 1.0);
    GroupDone(gi, std::move(r.status));
    return;
  }
  EndOp(&g.op_span, "rows", double(r.rows.size()));
  metrics_.scan_rows += r.rows.size();
  if (g.scan_pattern != PlanStep::kNoPattern &&
      g.scan_pattern < observed_extents_.size()) {
    observed_extents_[g.scan_pattern] = double(r.rows.size());
  }
  g.scan_pattern = PlanStep::kNoPattern;
  g.pending = std::move(r.rows);
  g.phase = GroupPhase::kRunning;
  StepGroup(gi);
}

void ConjunctiveExecutor::OnBoundScan(size_t gi,
                                      QueryBackend::BoundScanResult r) {
  GroupState& g = groups_[gi];
  if (!r.status.ok()) {
    EndOp(&g.op_span, "error", 1.0);
    GroupDone(gi, std::move(r.status));
    return;
  }
  EndOp(&g.op_span, "rows", double(r.rows.size()));
  metrics_.bound_rows += r.rows.size();
  std::vector<BindingSet> next;
  for (const QueryBackend::BoundRow& br : r.rows) {
    if (br.probe_index >= g.probe_members.size()) continue;
    for (size_t ri : g.probe_members[br.probe_index]) {
      BindingSet merged = g.acc[ri];
      bool consistent = true;
      for (const auto& [var, term] : br.bindings) {
        auto it = merged.find(var);
        if (it == merged.end()) {
          merged.emplace(var, term);
        } else if (!(it->second == term)) {
          consistent = false;
          break;
        }
      }
      if (consistent) next.push_back(std::move(merged));
    }
  }
  g.acc = std::move(next);
  g.probe_members.clear();
  ++g.patterns_done;
  if (g.acc.empty()) {
    GroupDone(gi, Status::OK());
    return;
  }
  MaybeReplan(gi);
  g.phase = GroupPhase::kRunning;
  StepGroup(gi);
}

void ConjunctiveExecutor::OnExists(size_t gi, Result<bool> r) {
  GroupState& g = groups_[gi];
  if (!r.ok()) {
    EndOp(&g.op_span, "error", 1.0);
    GroupDone(gi, r.status());
    return;
  }
  EndOp(&g.op_span, "exists", r.value() ? 1.0 : 0.0);
  g.acc_init = true;
  g.acc.clear();
  // True yields the join identity (one empty row); false yields the empty
  // set, which annihilates the cross-group join.
  if (r.value()) g.acc.push_back(BindingSet{});
  g.phase = GroupPhase::kRunning;
  StepGroup(gi);
}

void ConjunctiveExecutor::MaybeReplan(size_t gi) {
  if (!adaptive_) return;
  GroupState& g = groups_[gi];
  PlanGroup& pg = plan_.groups[gi];
  if (g.patterns_done == 0 || pg.est_cards.size() < g.patterns_done) return;
  double est = pg.est_cards[g.patterns_done - 1];
  if (est <= 0) return;  // the model had no estimate at this position
  double obs = double(g.acc.size());
  double ratio = (obs + 1.0) / (est + 1.0);
  if (ratio < 1.0) ratio = 1.0 / ratio;
  if (ratio <= divergence_) return;

  // The unexecuted pattern-bearing steps of the chain.
  std::vector<size_t> remaining;
  for (size_t si = g.step; si < pg.steps.size(); ++si) {
    if (pg.steps[si].pattern != PlanStep::kNoPattern) {
      remaining.push_back(pg.steps[si].pattern);
    }
  }
  if (remaining.empty()) return;

  std::vector<size_t> consumed(pg.patterns.begin(),
                               pg.patterns.begin() + ptrdiff_t(g.patterns_done));
  GroupSuffix suffix =
      PlanGroupSuffix(query_, consumed, remaining, obs, adaptive_options_);

  // Splice only when the continuation actually changed; an unchanged
  // re-plan is not a re-optimization.
  bool same = suffix.patterns == remaining &&
              suffix.steps.size() == pg.steps.size() - g.step;
  if (same) {
    for (size_t i = 0; i < suffix.steps.size(); ++i) {
      const PlanStep& a = suffix.steps[i];
      const PlanStep& b = pg.steps[g.step + i];
      if (a.kind != b.kind || a.pattern != b.pattern) {
        same = false;
        break;
      }
    }
  }
  if (same) return;

  pg.patterns = std::move(consumed);
  pg.patterns.insert(pg.patterns.end(), suffix.patterns.begin(),
                     suffix.patterns.end());
  pg.steps.resize(g.step);
  pg.steps.insert(pg.steps.end(), suffix.steps.begin(), suffix.steps.end());
  pg.est_cards.resize(g.patterns_done);
  pg.est_cards.insert(pg.est_cards.end(), suffix.est_cards.begin(),
                      suffix.est_cards.end());
  ++metrics_.reoptimizations;
  if (tracer_ != nullptr && tracer_->enabled() && trace_parent_.valid()) {
    TraceCtx mark = tracer_->Instant("exec.reoptimize", trace_parent_);
    tracer_->Annotate(mark, "observed", obs);
    tracer_->Annotate(mark, "estimated", est);
  }
}

void ConjunctiveExecutor::GroupDone(size_t gi, Status status) {
  GroupState& g = groups_[gi];
  g.phase = status.ok() ? GroupPhase::kDone : GroupPhase::kFailed;
  g.status = std::move(status);
  if (--unsettled_groups_ == 0) Finalize();
}

void ConjunctiveExecutor::Finalize() {
  Status status = Status::OK();
  for (const GroupState& g : groups_) {
    if (g.phase == GroupPhase::kFailed) {
      status = g.status;
      break;
    }
  }

  TraceCtx fin{};
  if (tracer_ != nullptr && tracer_->enabled()) {
    fin = tracer_->StartSpan("exec.finalize", trace_parent_);
  }

  std::vector<BindingSet> rows;
  if (status.ok() && !groups_.empty()) {
    rows = std::move(groups_[0].acc);
    size_t next_group = 1;
    for (const PlanStep& s : plan_.tail) {
      switch (s.kind) {
        case OpKind::kLocalJoin:
          if (next_group < groups_.size()) {
            rows = TripleStore::Join(rows, groups_[next_group].acc);
            next_group++;
          }
          break;
        case OpKind::kProject: {
          std::vector<BindingSet> projected;
          projected.reserve(rows.size());
          for (const BindingSet& row : rows) {
            projected.push_back(RestrictTo(row, query_.distinguished_vars()));
          }
          rows = std::move(projected);
          break;
        }
        case OpKind::kDedup: {
          BindingDeduper dd;
          std::vector<BindingSet> unique;
          const size_t in = rows.size();
          for (BindingSet& row : rows) {
            if (dd.Insert(row)) unique.push_back(std::move(row));
          }
          rows = std::move(unique);
          if (fin.valid()) {
            tracer_->Annotate(fin, "dedup_in", double(in));
            tracer_->Annotate(fin, "dedup_out", double(rows.size()));
          }
          break;
        }
        default:
          break;
      }
    }
  }

  ExecResult res;
  res.status = std::move(status);
  if (res.status.ok()) res.rows = std::move(rows);
  res.metrics = metrics_;
  res.observed_extents = observed_extents_;
  if (fin.valid()) {
    tracer_->Annotate(fin, "rows", double(res.rows.size()));
    tracer_->EndSpan(fin);
  }
  // Move the callback out first: it may destroy this executor, so no member
  // access after the call.
  DoneCallback cb = std::move(done_);
  done_ = nullptr;
  cb(std::move(res));
}

}  // namespace gridvine
