#include "selforg/self_organizer.h"

#include <algorithm>

#include "common/logging.h"
#include "selforg/connectivity.h"

namespace gridvine {

namespace {

IncrementalAssessor::Options MakeAssessorOptions(
    const SelfOrganizer::Options& o) {
  IncrementalAssessor::Options a;
  a.assess = o.assessor;
  a.message_cap = o.assess_message_cap;
  return a;
}

}  // namespace

SelfOrganizer::SelfOrganizer(GridVineNetwork* net, Options options)
    : net_(net),
      options_(options),
      rng_(options.seed),
      inc_assessor_(MakeAssessorOptions(options)) {
  inc_assessor_.Attach(&view_);
}

void SelfOrganizer::RegisterSchemaOwner(const std::string& schema,
                                        size_t peer_idx) {
  owners_[schema] = peer_idx;
}

size_t SelfOrganizer::OwnerOf(const std::string& schema) const {
  auto it = owners_.find(schema);
  return it == owners_.end() ? 0 : it->second;
}

MappingGraph SelfOrganizer::BuildGraphView() {
  MappingGraph graph;
  for (const auto& [schema, owner] : owners_) {
    graph.AddSchema(schema);
    auto mappings = net_->FetchMappingsFor(owner, schema);
    if (!mappings.ok()) continue;
    for (const auto& m : *mappings) graph.AddMapping(m);
  }
  return graph;
}

const MappingGraph& SelfOrganizer::SyncGraphView() {
  for (const auto& [schema, owner] : owners_) {
    view_.AddSchema(schema);
    auto mappings = net_->FetchMappingsFor(owner, schema);
    if (!mappings.ok()) continue;  // owner unreachable: keep the stale view
    for (const auto& m : *mappings) view_.AddMapping(m);
  }
  return view_;
}

Status SelfOrganizer::PublishAllDegrees() {
  const MappingGraph& graph = SyncGraphView();
  for (const auto& [schema, owner] : owners_) {
    GV_RETURN_NOT_OK(net_->PublishDegree(owner, options_.domain, schema,
                                         graph.InDegree(schema),
                                         graph.OutDegree(schema)));
  }
  return Status::OK();
}

Result<double> SelfOrganizer::ComputeIndicator() {
  size_t reader = owners_.empty() ? 0 : owners_.begin()->second;
  auto records = net_->FetchDomainDegrees(reader, options_.domain);
  if (!records.ok()) return records.status();
  if (records->empty()) {
    return Status::NotFound("connectivity registry empty for domain " +
                            options_.domain);
  }
  std::vector<std::pair<int, int>> degrees;
  degrees.reserve(records->size());
  for (const auto& rec : *records) {
    degrees.emplace_back(rec.in_degree, rec.out_degree);
  }
  return ConnectivityIndicator(degrees);
}

AttributeMatcher::ValueSets SelfOrganizer::SampleValueSets(
    const Schema& schema) {
  AttributeMatcher::ValueSets sets;
  size_t issuer = OwnerOf(schema.name());
  for (const auto& attr : schema.AttributeUris()) {
    TriplePatternQuery q(
        "o", TriplePattern(Term::Var("s"), Term::Uri(attr), Term::Var("o")));
    auto res = net_->SearchFor(issuer, q);
    if (!res.status.ok()) continue;
    std::set<std::string>& values = sets[attr];
    for (const auto& item : res.items) {
      if (int(values.size()) >= options_.value_sample_limit) break;
      values.insert(item.value.value());
    }
  }
  return sets;
}

std::set<std::string> SelfOrganizer::SampleSubjects(const Schema& schema) {
  std::set<std::string> subjects;
  size_t issuer = OwnerOf(schema.name());
  for (const auto& attr : schema.AttributeUris()) {
    TriplePatternQuery q(
        "s", TriplePattern(Term::Var("s"), Term::Uri(attr), Term::Var("o")));
    auto res = net_->SearchFor(issuer, q);
    if (!res.status.ok()) continue;
    for (const auto& item : res.items) {
      if (int(subjects.size()) >= options_.value_sample_limit) break;
      subjects.insert(item.value.value());
    }
  }
  return subjects;
}

std::vector<std::pair<std::string, std::string>>
SelfOrganizer::SelectCandidatePairs(const MappingGraph& graph, int count) {
  // Instance evidence: schemas sharing subject references are describing the
  // same entities (the paper's "shared references to the same protein
  // sequence"), making them prime mapping candidates.
  std::map<std::string, std::set<std::string>> subjects;
  std::map<std::string, Schema> schemas;
  for (const auto& [name, owner] : owners_) {
    auto schema = net_->FetchSchema(owner, name);
    if (!schema.ok()) continue;
    schemas[name] = *schema;
    subjects[name] = SampleSubjects(*schema);
  }

  struct Candidate {
    std::string a, b;
    size_t shared;
  };
  std::vector<Candidate> candidates;
  for (auto ia = schemas.begin(); ia != schemas.end(); ++ia) {
    for (auto ib = std::next(ia); ib != schemas.end(); ++ib) {
      const std::string& a = ia->first;
      const std::string& b = ib->first;
      // Skip pairs already linked by an active mapping in either direction.
      bool linked = false;
      for (const auto& m : graph.MappingsFrom(a)) {
        if (m.target_schema() == b) linked = true;
      }
      for (const auto& m : graph.MappingsFrom(b)) {
        if (m.target_schema() == a) linked = true;
      }
      if (linked) continue;
      size_t shared = 0;
      for (const auto& s : subjects[a]) shared += subjects[b].count(s);
      candidates.push_back(Candidate{a, b, shared});
    }
  }
  // Highest shared-reference count first; shuffle equals for tie-breaking.
  rng_.Shuffle(&candidates);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& x, const Candidate& y) {
                     return x.shared > y.shared;
                   });
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& c : candidates) {
    if (int(out.size()) >= count) break;
    out.emplace_back(c.a, c.b);
  }
  return out;
}

Result<SchemaMapping> SelfOrganizer::CreateMapping(const std::string& source,
                                                   const std::string& target) {
  auto src = net_->FetchSchema(OwnerOf(source), source);
  if (!src.ok()) return src.status();
  auto dst = net_->FetchSchema(OwnerOf(target), target);
  if (!dst.ok()) return dst.status();

  AttributeMatcher matcher(options_.matcher);
  AttributeMatcher::ValueSets src_values = SampleValueSets(*src);
  AttributeMatcher::ValueSets dst_values = SampleValueSets(*dst);
  // Optional cosine channel: vectors are derived locally from the names and
  // the value samples already fetched — no extra network traffic.
  EmbeddingTable src_emb, dst_emb;
  if (options_.matcher.embedding_weight > 0) {
    for (const auto& attr : src->AttributeUris()) {
      auto vit = src_values.find(attr);
      src_emb[attr] = EmbedAttribute(
          Schema::LocalOfUri(attr),
          vit != src_values.end() ? vit->second : std::set<std::string>{},
          options_.embedding_dim);
    }
    for (const auto& attr : dst->AttributeUris()) {
      auto vit = dst_values.find(attr);
      dst_emb[attr] = EmbedAttribute(
          Schema::LocalOfUri(attr),
          vit != dst_values.end() ? vit->second : std::set<std::string>{},
          options_.embedding_dim);
    }
    matcher.SetEmbeddings(&src_emb, &dst_emb);
  }
  auto correspondences = matcher.Match(*src, *dst, src_values, dst_values);
  if (correspondences.empty()) {
    return Status::NotFound("no attribute correspondences found between " +
                            source + " and " + target);
  }
  SchemaMapping m("auto-" + source + "-" + target + "-" +
                      std::to_string(next_mapping_seq_++),
                  source, target);
  m.set_provenance(MappingProvenance::kAutomatic);
  m.set_bidirectional(true);  // attribute alignments are symmetric evidence
  double score_sum = 0;
  for (const auto& c : correspondences) {
    GV_RETURN_NOT_OK(m.AddCorrespondence(c.source_attr_uri, c.target_attr_uri));
    score_sum += c.score;
  }
  m.set_confidence(score_sum / double(correspondences.size()));
  GV_RETURN_NOT_OK(net_->InsertMapping(OwnerOf(source), m));
  GV_CLOG("selforg", Info) << "created mapping " << m.id() << " ("
                           << correspondences.size()
                           << " correspondences, confidence "
                           << m.confidence() << ")";
  return m;
}

bool SelfOrganizer::PushMappingUpdate(const SchemaMapping& updated) {
  if (!net_->UpsertMapping(OwnerOf(updated.source_schema()), updated).ok()) {
    return false;
  }
  // Mirror into the view now so the assessor reacts this round instead of
  // at the next sync (the next sync then sees identical content: no-op).
  view_.AddMapping(updated);
  return true;
}

std::vector<std::string> SelfOrganizer::RepairStaleMappings() {
  // Current schema definitions, as stored (evolution arrives via
  // UpsertSchema, so the fetch reflects the latest state).
  std::map<std::string, std::set<std::string>> attrs;
  for (const auto& [name, owner] : owners_) {
    auto schema = net_->FetchSchema(owner, name);
    if (!schema.ok()) continue;  // unreachable: cannot judge, skip
    auto& set = attrs[name];
    for (const auto& uri : schema->AttributeUris()) set.insert(uri);
  }

  // Active mappings whose correspondences dangle (either endpoint renamed
  // away) are no longer agreements about the current schemas.
  std::vector<std::string> stale;
  std::set<std::string> seen;
  for (const auto& schema : view_.Schemas()) {
    for (const auto& mv : view_.MappingsFrom(schema)) {
      std::string id = mv.id();
      if (id.size() > 4 && id.substr(id.size() - 4) == "~rev") {
        id = id.substr(0, id.size() - 4);
      }
      if (!seen.insert(id).second) continue;
      auto m = view_.Get(id);
      if (!m.ok() || m->deprecated()) continue;
      auto sit = attrs.find(m->source_schema());
      auto tit = attrs.find(m->target_schema());
      bool dangling = false;
      for (const auto& [from, to] : m->correspondences()) {
        if (sit != attrs.end() && !sit->second.count(from)) dangling = true;
        if (tit != attrs.end() && !tit->second.count(to)) dangling = true;
        if (dangling) break;
      }
      if (!dangling) continue;
      SchemaMapping deprecated = *m;
      deprecated.set_deprecated(true);
      if (PushMappingUpdate(deprecated)) {
        stale.push_back(id);
        GV_CLOG("selforg", Info)
            << "deprecated stale mapping " << id << " (schema evolved)";
      }
    }
  }
  return stale;
}

SelfOrganizer::RoundReport SelfOrganizer::RunRound() {
  RoundReport report;
  ++rounds_run_;
  SyncGraphView();

  // Step 0 (agreement maintenance): schemas may have evolved since the last
  // round; mappings with dangling correspondences are deprecated so the
  // creation step can re-derive them against the current definitions.
  if (options_.repair_stale_mappings) {
    report.stale_deprecated_ids = RepairStaleMappings();
    report.mappings_stale_deprecated = report.stale_deprecated_ids.size();
    total_stale_deprecated_ += report.mappings_stale_deprecated;
  }

  // Step 1+2: publish degrees, read the indicator back from the registry.
  PublishAllDegrees().ok();
  auto ci = ComputeIndicator();
  report.ci_before = ci.ok() ? *ci : 0.0;
  GV_CLOG("selforg", Debug) << "round start: ci=" << report.ci_before;

  // Step 3: create mappings while the mediation layer is under-connected.
  // ci < 0 is the paper's criterion; two cases the degree-distribution
  // heuristic cannot flag are checked against the graph view directly: a
  // schema with no mappings at all (an all-zero degree sequence gives
  // ci = 0), and a graph fragmented into several well-connected components
  // (each side keeps healthy degrees — the post-schema-evolution shape,
  // after agreement maintenance severs the stale edges).
  bool has_isolated_schema = false;
  for (const auto& schema : view_.Schemas()) {
    if (view_.InDegree(schema) + view_.OutDegree(schema) == 0) {
      has_isolated_schema = true;
      break;
    }
  }
  bool fragmented = view_.schema_count() > 1 && !view_.IsStronglyConnected();
  if (!ci.ok() || *ci < 0 || has_isolated_schema || fragmented) {
    for (const auto& [a, b] :
         SelectCandidatePairs(view_, options_.creations_per_round)) {
      auto created = CreateMapping(a, b);
      if (created.ok()) {
        ++report.mappings_created;
        report.created_ids.push_back(created->id());
        // Feed the new edge into the maintained factor graph immediately.
        view_.AddMapping(*created);
      }
    }
    total_created_ += report.mappings_created;
  }

  // Step 4: assess automatic mappings; deprecate the bad ones. The
  // incremental path converges only the dirty region of the maintained
  // factor graph (capped); the legacy path rebuilds from scratch.
  SyncGraphView();
  std::map<std::string, double> posteriors;
  if (options_.incremental) {
    IncrementalAssessor::UpdateStats stats = inc_assessor_.Update();
    report.bp_messages = stats.messages;
    report.bp_converged = stats.converged;
    report.bp_factors = inc_assessor_.factor_count();
    posteriors = inc_assessor_.Posteriors();
  } else {
    MappingAssessor assessor(options_.assessor);
    posteriors = assessor.Assess(view_).posterior;
  }
  for (const auto& [id, posterior] : posteriors) {
    if (posterior >= options_.deprecate_below) continue;
    auto m = view_.Get(id);
    if (!m.ok() || m->deprecated()) continue;
    SchemaMapping deprecated = *m;
    deprecated.set_deprecated(true);
    deprecated.set_confidence(posterior);
    if (PushMappingUpdate(deprecated)) {
      ++report.mappings_deprecated;
      report.deprecated_ids.push_back(id);
      GV_CLOG("selforg", Info)
          << "deprecated mapping " << id << " (posterior " << posterior << ")";
    }
  }
  total_deprecated_ += report.mappings_deprecated;

  // Refresh the registry and report the post-round state.
  PublishAllDegrees().ok();
  auto ci_after = ComputeIndicator();
  report.ci_after = ci_after.ok() ? *ci_after : 0.0;
  report.scc_fraction_after = view_.LargestSccFraction();
  report.active_mappings = view_.active_mapping_count();
  GV_CLOG("selforg", Debug) << "round end: ci=" << report.ci_after
                            << " created=" << report.mappings_created
                            << " deprecated=" << report.mappings_deprecated
                            << " active=" << report.active_mappings;
  return report;
}

std::vector<SelfOrganizer::RoundReport> SelfOrganizer::RunContinuous(
    int rounds, SimTime interval) {
  std::vector<RoundReport> reports;
  reports.reserve(size_t(rounds > 0 ? rounds : 0));
  for (int r = 0; r < rounds; ++r) {
    // Let the deployment live for a slice (churn, faults, foreground
    // queries), then organize synchronously from outside the event loop —
    // the sync wrappers pump the simulator themselves, so a round must not
    // run from inside a scheduled event.
    net_->RunUntil(net_->Now() + interval);
    reports.push_back(RunRound());
  }
  return reports;
}

void SelfOrganizer::PublishMetrics(MetricsRegistry* registry) const {
  registry->Counter("gv.selforg.rounds") += rounds_run_;
  registry->Counter("gv.selforg.mappings_created") += total_created_;
  registry->Counter("gv.selforg.mappings_deprecated") += total_deprecated_;
  registry->Counter("gv.selforg.mappings_stale_deprecated") +=
      total_stale_deprecated_;
  registry->Counter("gv.selforg.bp.messages") +=
      inc_assessor_.lifetime_messages();
  registry->Gauge("gv.selforg.bp.factors") =
      double(inc_assessor_.factor_count());
  registry->Gauge("gv.selforg.bp.variables") =
      double(inc_assessor_.variable_count());
  registry->Gauge("gv.selforg.bp.dirty") = double(inc_assessor_.dirty_count());
  registry->Gauge("gv.selforg.active_mappings") =
      double(view_.active_mapping_count());
}

}  // namespace gridvine
