// Tests for key-space range support: the order-preserving hash's subtree
// computation, the overlay's range multicast ("shower"), and prefix-literal
// queries at the mediation layer.

#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "pgrid/pgrid_builder.h"
#include "gridvine/gridvine_network.h"

namespace gridvine {
namespace {

TEST(SubtreeForTest, ContainsAllPrefixedValues) {
  OrderPreservingHash h(32);
  Key subtree = h.SubtreeFor("asp");
  for (const char* value :
       {"asp", "aspergillus", "aspergillus niger", "aspzzz", "asp123"}) {
    EXPECT_TRUE(subtree.IsPrefixOf(h(value)))
        << value << " not under " << subtree;
  }
}

TEST(SubtreeForTest, ExcludesFarValues) {
  OrderPreservingHash h(32);
  Key subtree = h.SubtreeFor("asp");
  EXPECT_FALSE(subtree.IsPrefixOf(h("penicillium")));
  EXPECT_FALSE(subtree.IsPrefixOf(h("zebra")));
  // Non-empty prefix => non-trivial subtree.
  EXPECT_GT(subtree.length(), 0);
}

TEST(SubtreeForTest, LongerPrefixGivesDeeperSubtree) {
  OrderPreservingHash h(40);
  EXPECT_GT(h.SubtreeFor("aspergillus").length(),
            h.SubtreeFor("asp").length());
}

TEST(SubtreeForTest, EmptyPrefixIsWholeSpace) {
  OrderPreservingHash h(16);
  EXPECT_EQ(h.SubtreeFor("").length(), 0);
}

// ---- Overlay-level multicast ------------------------------------------------

struct CountingNodePayload : MessageBody {
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("test.count");
    return t;
  }
};

TEST(RangeMulticastTest, ReachesEveryRegionExactlyOnce) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(3));
  PGridPeer::Options opts;
  opts.key_depth = 10;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
  for (int i = 0; i < 32; ++i) {
    owned.push_back(std::make_unique<PGridPeer>(&sim, &net, Rng(7 + i), opts));
    peers.push_back(owned.back().get());
  }
  Rng rng(5);
  PGridBuilder::BuildBalanced(peers, &rng);  // 32 peers, 5-bit paths

  std::map<NodeId, int> deliveries;
  for (auto* p : peers) {
    p->SetExtensionHandler(
        [&deliveries, id = p->id()](NodeId, std::shared_ptr<const MessageBody>,
                                    int) { ++deliveries[id]; });
  }

  // Multicast to the subtree "01" — 8 of the 32 peers (paths 01000..01111).
  Key prefix = Key::FromBits("01").value();
  peers[17]->RouteRange(prefix, std::make_shared<CountingNodePayload>());
  sim.Run();

  int reached = 0;
  for (auto* p : peers) {
    if (prefix.IsPrefixOf(p->path())) {
      EXPECT_EQ(deliveries[p->id()], 1)
          << "peer " << p->path() << " deliveries";
      if (deliveries[p->id()] > 0) ++reached;
    } else {
      EXPECT_EQ(deliveries.count(p->id()), 0u)
          << "peer " << p->path() << " outside the range got the multicast";
    }
  }
  EXPECT_EQ(reached, 8);
}

TEST(RangeMulticastTest, RootPrefixFloodsEveryPeer) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(3));
  PGridPeer::Options opts;
  opts.key_depth = 8;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
  for (int i = 0; i < 16; ++i) {
    owned.push_back(std::make_unique<PGridPeer>(&sim, &net, Rng(9 + i), opts));
    peers.push_back(owned.back().get());
  }
  Rng rng(5);
  PGridBuilder::BuildBalanced(peers, &rng);

  std::set<NodeId> delivered;
  for (auto* p : peers) {
    p->SetExtensionHandler(
        [&delivered, id = p->id()](NodeId, std::shared_ptr<const MessageBody>,
                                   int) { delivered.insert(id); });
  }
  peers[3]->RouteRange(Key(), std::make_shared<CountingNodePayload>());
  sim.Run();
  EXPECT_EQ(delivered.size(), peers.size());
}

// ---- Mediation-layer prefix queries ------------------------------------------

class RangeQueryTest : public ::testing::Test {
 protected:
  RangeQueryTest() : net_(MakeOptions()) {}

  static GridVineNetwork::Options MakeOptions() {
    GridVineNetwork::Options o;
    o.num_peers = 32;
    o.key_depth = 24;
    o.seed = 55;
    o.latency = GridVineNetwork::LatencyKind::kConstant;
    o.latency_param = 0.01;
    o.peer.query_timeout = 2.0;
    return o;
  }

  void SetUp() override {
    int i = 0;
    for (const char* organism :
         {"Aspergillus niger", "Aspergillus flavus", "Aspergillus fumigatus",
          "Penicillium chrysogenum", "Saccharomyces cerevisiae"}) {
      Triple t(Term::Uri("seq" + std::to_string(i)),
               Term::Uri("EMBL#Organism"), Term::Literal(organism));
      ASSERT_TRUE(net_.InsertTriple(size_t(i % net_.size()), t).ok());
      ++i;
    }
  }

  GridVineNetwork net_;
};

TEST_F(RangeQueryTest, PrefixLiteralWithoutOtherConstantsUsesRange) {
  // (?x, ?p, "Aspergillus%"): no exact constant anywhere — only the range
  // dispatch can resolve this.
  TriplePatternQuery q("x",
                       TriplePattern(Term::Var("x"), Term::Var("p"),
                                     Term::Literal("Aspergillus%")));
  auto res = net_.SearchFor(9, q);
  ASSERT_TRUE(res.status.ok()) << res.status;
  EXPECT_EQ(res.items.size(), 3u);
  for (const auto& item : res.items) {
    EXPECT_TRUE(item.value.value().find("seq") == 0);
  }
}

TEST_F(RangeQueryTest, MidPatternWildcardsStillMatchWithinRange) {
  TriplePatternQuery q("x",
                       TriplePattern(Term::Var("x"), Term::Var("p"),
                                     Term::Literal("Aspergillus f%")));
  auto res = net_.SearchFor(2, q);
  ASSERT_TRUE(res.status.ok());
  // flavus and fumigatus.
  EXPECT_EQ(res.items.size(), 2u);
}

TEST_F(RangeQueryTest, NoMatchRangeIsEmptyNotError) {
  TriplePatternQuery q("x",
                       TriplePattern(Term::Var("x"), Term::Var("p"),
                                     Term::Literal("Zygomycota%")));
  auto res = net_.SearchFor(2, q);
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(res.items.empty());
}

TEST_F(RangeQueryTest, ExactConstantStillPreferredOverRange) {
  // A predicate constant exists: the query must resolve through the single
  // destination (cheap), not the multicast — observable via early finish
  // well under the 2 s window.
  TriplePatternQuery q("x",
                       TriplePattern(Term::Var("x"), Term::Uri("EMBL#Organism"),
                                     Term::Literal("Aspergillus%")));
  auto res = net_.SearchFor(9, q);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.items.size(), 3u);
  EXPECT_LT(res.latency, 1.0);  // early finish: not pinned to the window
}

TEST_F(RangeQueryTest, LeadingWildcardCannotUseRange) {
  // "%niger": no prefix to hash — and no other constant: unresolvable, so
  // the query returns empty after its window (not an error).
  TriplePatternQuery q("x", TriplePattern(Term::Var("x"), Term::Var("p"),
                                          Term::Literal("%niger")));
  auto res = net_.SearchFor(1, q);
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(res.items.empty());
}

}  // namespace
}  // namespace gridvine
