#ifndef GRIDVINE_QUERY_QUERY_H_
#define GRIDVINE_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple_pattern.h"

namespace gridvine {

/// The paper's basic query form, SearchFor(x? : (s, p, o)): a triple pattern
/// plus the distinguished variable whose bindings the query returns.
class TriplePatternQuery {
 public:
  TriplePatternQuery() = default;
  TriplePatternQuery(std::string distinguished_var, TriplePattern pattern)
      : distinguished_var_(std::move(distinguished_var)),
        pattern_(std::move(pattern)) {}

  const std::string& distinguished_var() const { return distinguished_var_; }
  const TriplePattern& pattern() const { return pattern_; }

  /// Replaces the pattern (reformulation produces a new query this way).
  TriplePatternQuery WithPattern(TriplePattern pattern) const {
    return TriplePatternQuery(distinguished_var_, std::move(pattern));
  }

  /// The distinguished variable must occur in the pattern.
  Status Validate() const;

  /// The schema this query is posed against: the schema part of its
  /// predicate URI ("" when the predicate is a variable).
  std::string SchemaName() const;

  /// Serialization "var\x1e<pattern serialization>".
  std::string Serialize() const;
  static Result<TriplePatternQuery> Parse(const std::string& data);

  std::string ToString() const {
    return "SearchFor(" + distinguished_var_ + "? : " + pattern_.ToString() +
           ")";
  }

  bool operator==(const TriplePatternQuery& other) const {
    return distinguished_var_ == other.distinguished_var_ &&
           pattern_ == other.pattern_;
  }

 private:
  std::string distinguished_var_;
  TriplePattern pattern_;
};

/// A conjunctive query: a set of triple patterns sharing variables, resolved
/// by iteratively matching each pattern and joining the binding sets (paper
/// Section 2.3, last paragraph).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::vector<std::string> distinguished_vars,
                   std::vector<TriplePattern> patterns)
      : distinguished_vars_(std::move(distinguished_vars)),
        patterns_(std::move(patterns)) {}

  const std::vector<std::string>& distinguished_vars() const {
    return distinguished_vars_;
  }
  const std::vector<TriplePattern>& patterns() const { return patterns_; }

  /// Each distinguished variable must occur in some pattern; at least one
  /// pattern.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<std::string> distinguished_vars_;
  std::vector<TriplePattern> patterns_;
};

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_QUERY_H_
