#ifndef GRIDVINE_COMMON_KEY_H_
#define GRIDVINE_COMMON_KEY_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "common/result.h"

namespace gridvine {

/// A key in the P-Grid binary key space: a finite bit string, also used for
/// peer paths π(p). Keys are ordered lexicographically on their bits, which —
/// combined with the order-preserving hash — gives the overlay its search-tree
/// semantics.
///
/// Bits are stored as a std::string of '0'/'1' characters. This favours
/// debuggability over raw speed; key lengths in GridVine are tens of bits so
/// the cost is irrelevant next to simulated network latencies.
class Key {
 public:
  /// The empty key (the root of the trie; prefix of every key).
  Key() = default;

  /// Parses a key from a string of '0'/'1' characters.
  static Result<Key> FromBits(const std::string& bits);

  /// Builds a key from the `num_bits` most significant bits of `value`
  /// (num_bits <= 64). The MSB of the selected window becomes bit 0.
  static Key FromUint(uint64_t value, int num_bits);

  /// Number of bits.
  int length() const { return static_cast<int>(bits_.size()); }
  bool empty() const { return bits_.empty(); }

  /// Bit at position i (0 = most significant). Precondition: i < length().
  int bit(int i) const { return bits_[static_cast<size_t>(i)] == '1' ? 1 : 0; }

  /// Returns a copy with `b` (0/1) appended.
  Key WithBit(int b) const;

  /// Returns the first `n` bits (n clamped to length()).
  Key Prefix(int n) const;

  /// Returns a copy with bit i flipped. Precondition: i < length().
  Key WithFlippedBit(int i) const;

  /// True if this key is a prefix of (or equal to) `other`.
  bool IsPrefixOf(const Key& other) const;

  /// Length of the longest common prefix with `other`.
  int CommonPrefixLength(const Key& other) const;

  /// The key interpreted as a binary fraction in [0, 1): 0.b0 b1 b2 ...
  double ToFraction() const;

  /// The underlying '0'/'1' string, e.g. "0110".
  const std::string& bits() const { return bits_; }
  std::string ToString() const { return bits_; }

  bool operator==(const Key& other) const { return bits_ == other.bits_; }
  bool operator!=(const Key& other) const { return bits_ != other.bits_; }
  /// Lexicographic bit order; a proper prefix sorts before its extensions.
  bool operator<(const Key& other) const { return bits_ < other.bits_; }

 private:
  explicit Key(std::string bits) : bits_(std::move(bits)) {}

  std::string bits_;
};

inline std::ostream& operator<<(std::ostream& os, const Key& k) {
  return os << (k.empty() ? "<root>" : k.bits());
}

/// Hash functor so Key can be used in unordered containers.
struct KeyHash {
  size_t operator()(const Key& k) const {
    return std::hash<std::string>()(k.bits());
  }
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_KEY_H_
