#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace gridvine {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Dynamic programming over (value position, pattern position); greedy
  // two-pointer with backtracking is equivalent and allocation-free.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (p < pattern.size() && pattern[p] == value[v]) {
      ++p;
      ++v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - double(EditDistance(a, b)) / double(longest);
}

std::set<std::string> Trigrams(std::string_view s) {
  std::string padded = "$$" + ToLower(s) + "$$";
  std::set<std::string> out;
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    out.insert(padded.substr(i, 3));
  }
  return out;
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  std::set<std::string> ta = Trigrams(a);
  std::set<std::string> tb = Trigrams(b);
  if (ta.empty() && tb.empty()) return 1.0;
  size_t common = 0;
  for (const auto& t : ta) common += tb.count(t);
  return 2.0 * double(common) / double(ta.size() + tb.size());
}

double JaccardSimilarity(const std::set<std::string>& a,
                         const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t common = 0;
  for (const auto& x : a) common += b.count(x);
  size_t uni = a.size() + b.size() - common;
  return uni == 0 ? 1.0 : double(common) / double(uni);
}

}  // namespace gridvine
