// The sharded engine's headline guarantee: a run's outcome is bit-identical
// for ANY shard count, including 1. The conservative-lookahead epochs, the
// (time, creator, counter) merge rule and per-node SmallRng streams must
// together make the interleaving of worker threads unobservable. These tests
// run the same seeded scenario at shards 1 / 2 / 4 and require byte-equal
// stats, per-operation results and clocks.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gridvine/gridvine_network.h"
#include "pgrid/pgrid_builder.h"
#include "pgrid/pgrid_peer.h"
#include "sim/latency.h"
#include "sim/sharded.h"

namespace gridvine {
namespace {

// --- Overlay-level scenario driven directly on ShardedNetwork --------------

struct OverlayOutcome {
  NetworkStats stats;
  std::vector<std::string> retrieved;  // per op: joined values or error tag
  std::vector<int> update_hops;
  std::vector<uint64_t> peer_forwards;  // per peer
  SimTime final_time = 0;
  size_t events = 0;

  friend bool operator==(const OverlayOutcome&,
                         const OverlayOutcome&) = default;
};

Key BitsKey(Rng* rng, int len) {
  std::string bits;
  for (int b = 0; b < len; ++b) bits += rng->Bernoulli(0.5) ? '1' : '0';
  return Key::FromBits(bits).value();
}

OverlayOutcome RunOverlay(uint64_t seed, uint32_t shards) {
  ShardedNetwork::Options so;
  so.shards = shards;
  so.seed = seed;
  so.loss_probability = 0.01;
  // WAN latency: positive MinDelay (the lookahead) plus a log-normal tail
  // that burns per-node rng draws on every send.
  so.latency = std::make_unique<WanLatency>(0.005, -3.5, 0.8, 0.0, 0.0);
  ShardedNetwork engine(std::move(so));

  const size_t kPeers = 24;
  Rng rng(seed);
  PGridPeer::Options popts;
  popts.key_depth = 10;
  std::vector<std::unique_ptr<PGridPeer>> peers;
  for (size_t i = 0; i < kPeers; ++i) {
    peers.push_back(std::make_unique<PGridPeer>(
        engine.SimForNext(), engine.LaneForNext(), rng.Fork(), popts));
  }
  std::vector<PGridPeer*> raw;
  for (auto& p : peers) raw.push_back(p.get());
  Rng wire(seed + 99);
  PGridBuilder::BuildBalanced(raw, &wire, 2);

  const int kOps = 48;
  Rng key_rng(seed + 7);
  std::vector<Key> keys;
  for (int i = 0; i < kOps; ++i) keys.push_back(BitsKey(&key_rng, 7));

  // Preallocated result slots: each op's callback (running on its issuer's
  // shard) writes only its own element — no cross-thread contention.
  std::vector<int> update_hops(size_t(kOps), -1);
  for (int i = 0; i < kOps; ++i) {
    NodeId issuer = NodeId(size_t(i) % kPeers);
    engine.ScheduleForNode(issuer, 0.05 * (i + 1), [&, i, issuer] {
      peers[issuer]->Update(keys[size_t(i)], "v" + std::to_string(i),
                            [&update_hops, i](Result<PGridPeer::UpdateOutcome> r) {
                              update_hops[size_t(i)] = r.ok() ? r->hops : -2;
                            });
    });
  }
  engine.RunUntilIdle();

  std::vector<std::string> retrieved{size_t(kOps), std::string()};
  for (int i = 0; i < kOps; ++i) {
    NodeId issuer = NodeId(size_t(i * 5 + 3) % kPeers);
    engine.ScheduleForNode(issuer, 0.05 * (i + 1), [&, i, issuer] {
      peers[issuer]->Retrieve(
          keys[size_t(i)], [&retrieved, i](Result<PGridPeer::LookupResult> r) {
            if (!r.ok()) {
              retrieved[size_t(i)] = "<err>";
              return;
            }
            std::string joined;
            for (const auto& v : r->values) joined += v + ";";
            retrieved[size_t(i)] = joined;
          });
    });
  }
  engine.RunUntilIdle();

  OverlayOutcome out;
  out.stats = engine.AggregateStats();
  out.retrieved = std::move(retrieved);
  out.update_hops = std::move(update_hops);
  for (auto& p : peers) out.peer_forwards.push_back(p->counters().forwards);
  out.final_time = engine.Now();
  out.events = engine.events_executed();
  return out;
}

TEST(ShardedDeterminismTest, OverlayBitIdenticalAcrossShardCounts) {
  OverlayOutcome one = RunOverlay(4242, 1);
  OverlayOutcome two = RunOverlay(4242, 2);
  OverlayOutcome four = RunOverlay(4242, 4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  // The scenario actually exercised the network.
  EXPECT_GT(one.stats.messages_sent, 100u);
}

TEST(ShardedDeterminismTest, OverlayRepeatableAtFourShards) {
  EXPECT_EQ(RunOverlay(777, 4), RunOverlay(777, 4));
}

TEST(ShardedDeterminismTest, DifferentSeedsDiverge) {
  EXPECT_NE(RunOverlay(1, 4), RunOverlay(2, 4));
}

// --- Full mediation stack through GridVineNetwork --------------------------

struct StackOutcome {
  NetworkStats stats;
  std::vector<std::string> query_values;
  SimTime final_time = 0;
  size_t events = 0;

  friend bool operator==(const StackOutcome&, const StackOutcome&) = default;
};

Triple T(const std::string& s, const std::string& p, const std::string& o) {
  return Triple(Term::Uri(s), Term::Uri(p), Term::Literal(o));
}

StackOutcome RunStack(uint64_t seed, uint32_t shards, bool traced = false,
                      std::vector<Tracer::Span>* spans_out = nullptr,
                      bool force_sharded = false) {
  GridVineNetwork::Options o;
  o.num_peers = 16;
  o.key_depth = 12;
  o.seed = seed;
  o.shards = shards;
  o.force_sharded = force_sharded;
  o.latency = GridVineNetwork::LatencyKind::kWan;
  o.latency_param = 0.01;
  o.loss_probability = 0.01;
  o.peer.query_timeout = 3.0;
  GridVineNetwork net(o);

  EXPECT_TRUE(net.InsertSchema(0, Schema("A", "d", {"organism"})).ok());
  EXPECT_TRUE(net.InsertSchema(1, Schema("B", "d", {"organism"})).ok());
  std::vector<Triple> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back(T("a" + std::to_string(i), "A#organism",
                      i % 2 ? "Aspergillus niger" : "Penicillium"));
  }
  net.InsertTriples(2, batch);
  EXPECT_TRUE(
      net.InsertTriple(1, T("b1", "B#organism", "Aspergillus flavus")).ok());
  SchemaMapping m("ab", "A", "B");
  EXPECT_TRUE(m.AddCorrespondence("A#organism", "B#organism").ok());
  net.InsertMapping(0, m);

  if (traced) net.tracer()->Enable();
  GridVinePeer::QueryOptions qopts;
  qopts.reformulate = true;
  TriplePatternQuery q(
      "x", TriplePattern(Term::Var("x"), Term::Uri("A#organism"),
                         Term::Literal("%Aspergillus%")));
  auto res = net.SearchFor(5, q, qopts);
  net.Settle();
  if (spans_out != nullptr) *spans_out = net.tracer()->Snapshot();

  StackOutcome out;
  out.stats = net.engine() != nullptr ? net.engine()->AggregateStats()
                                      : net.network()->stats();
  for (const auto& item : res.items) {
    out.query_values.push_back(item.value.value());
  }
  out.final_time = net.Now();
  // Classic and sharded engines count "events" differently; zero it for
  // cross-mode comparisons (shards=1 classic vs shards=N).
  out.events = net.engine() != nullptr ? net.engine()->events_executed() : 0;
  return out;
}

TEST(ShardedDeterminismTest, MediationStackBitIdenticalAcrossShardCounts) {
  StackOutcome two = RunStack(99, 2);
  StackOutcome four = RunStack(99, 4);
  EXPECT_EQ(two, four);
  EXPECT_FALSE(two.query_values.empty());
  EXPECT_GT(two.stats.messages_sent, 50u);
}

TEST(ShardedDeterminismTest, MediationStackRepeatable) {
  EXPECT_EQ(RunStack(5, 4), RunStack(5, 4));
}

// Tracing must be a pure observer: span ids come from plain counters and no
// tracer call draws from an Rng, so a traced run is bit-identical to the
// untraced run at every shard count.
TEST(ShardedDeterminismTest, TracedRunBitIdenticalToUntraced) {
  for (uint32_t shards : {1u, 2u, 4u}) {
    StackOutcome off = RunStack(99, shards, /*traced=*/false);
    StackOutcome on = RunStack(99, shards, /*traced=*/true);
    EXPECT_EQ(off, on) << "shards=" << shards;
    EXPECT_GT(off.stats.messages_sent, 50u);
  }
}

// The merged view of a sharded run describes the same execution as the
// classic run: same spans, same names, at the same simulated instants. (Span
// ids and order keys differ by construction — shard bases and content-derived
// counters — so the comparison is on (start, name) content.)
TEST(ShardedDeterminismTest, MergedTraceMatchesSingleShardRun) {
  std::vector<Tracer::Span> single, merged;
  StackOutcome one =
      RunStack(99, 1, /*traced=*/true, &single, /*force_sharded=*/true);
  StackOutcome two = RunStack(99, 2, /*traced=*/true, &merged);
  EXPECT_EQ(one, two);
  ASSERT_FALSE(single.empty());
  EXPECT_EQ(single.size(), merged.size());

  TraceAnalyzer ta(merged);
  EXPECT_EQ(ta.CheckConsistency(), "");
  EXPECT_EQ(ta.OpenCount(), TraceAnalyzer(single).OpenCount());

  auto content = [](const std::vector<Tracer::Span>& spans) {
    std::vector<std::pair<double, std::string>> rows;
    for (const auto& s : spans) rows.emplace_back(s.start, std::string(s.name));
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(content(single), content(merged));

  // Sharded ids carry the shard index in the high bits, and both shards
  // actually recorded spans.
  bool saw_shard1 = false;
  for (const auto& s : merged) {
    if ((s.span_id >> Tracer::kShardIdShift) == 1u) saw_shard1 = true;
  }
  EXPECT_TRUE(saw_shard1);
}

}  // namespace
}  // namespace gridvine
