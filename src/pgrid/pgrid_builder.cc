#include "pgrid/pgrid_builder.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

namespace gridvine {

void PGridBuilder::BuildBalanced(const std::vector<PGridPeer*>& peers,
                                 Rng* rng, int refs_per_level) {
  if (peers.empty()) return;
  size_t n = peers.size();
  int depth = 0;
  while ((size_t(1) << (depth + 1)) <= n) ++depth;
  size_t leaves = size_t(1) << depth;
  for (size_t i = 0; i < n; ++i) {
    peers[i]->SetPath(Key::FromUint(i % leaves, depth));
  }
  WireRouting(peers, rng, refs_per_level);
}

void PGridBuilder::BuildAdaptive(const std::vector<PGridPeer*>& peers,
                                 const std::vector<Key>& sample, Rng* rng,
                                 int refs_per_level) {
  if (peers.empty()) return;
  if (sample.empty()) {
    BuildBalanced(peers, rng, refs_per_level);
    return;
  }

  // Recursive proportional split. Each frame owns a set of peers and the
  // sample keys under the current prefix; with >1 peer the space is split at
  // the next bit and peers are allocated proportionally to sample mass.
  std::function<void(std::vector<PGridPeer*>, std::vector<Key>, Key)> split =
      [&](std::vector<PGridPeer*> group, std::vector<Key> keys, Key prefix) {
        if (group.size() <= 1 ||
            (!keys.empty() && prefix.length() >= keys[0].length())) {
          for (PGridPeer* p : group) p->SetPath(prefix);
          return;
        }
        std::vector<Key> zeros, ones;
        for (const Key& k : keys) {
          if (k.length() > prefix.length() && k.bit(prefix.length()) == 1) {
            ones.push_back(k);
          } else {
            zeros.push_back(k);
          }
        }
        double frac1 =
            keys.empty() ? 0.5 : double(ones.size()) / double(keys.size());
        auto n1 = size_t(std::lround(frac1 * double(group.size())));
        n1 = std::clamp<size_t>(n1, 1, group.size() - 1);
        std::vector<PGridPeer*> g1(group.begin(),
                                   group.begin() + ptrdiff_t(n1));
        std::vector<PGridPeer*> g0(group.begin() + ptrdiff_t(n1), group.end());
        split(std::move(g0), std::move(zeros), prefix.WithBit(0));
        split(std::move(g1), std::move(ones), prefix.WithBit(1));
      };

  std::vector<PGridPeer*> shuffled = peers;
  rng->Shuffle(&shuffled);
  split(shuffled, sample, Key());
  WireRouting(peers, rng, refs_per_level);
}

void PGridBuilder::WireRouting(const std::vector<PGridPeer*>& peers, Rng* rng,
                               int refs_per_level) {
  for (PGridPeer* p : peers) {
    // Reset the level structure and drop stale links: when paths are
    // reassigned wholesale (e.g. balanced -> adaptive rebuild), refs wired
    // for the old topology would violate the complementary-subtree
    // invariant and create routing loops.
    p->routing()->SetPath(p->path());
    p->routing()->ClearLinks();
  }
  // Index peers by path string so complementary-subtree candidates live in a
  // contiguous sorted range. Refs are then *sampled* from that range instead
  // of collected and shuffled: at level 0 the complementary subtree holds
  // ~n/2 peers, so collect-then-shuffle is O(n^2) across the network and was
  // the wall that kept 100k+-peer deployments from constructing.
  std::vector<std::pair<std::string, PGridPeer*>> by_path;
  by_path.reserve(peers.size());
  for (PGridPeer* q : peers) by_path.emplace_back(q->path().bits(), q);
  std::sort(by_path.begin(), by_path.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // [lo, hi) of entries whose path starts with `prefix`. The upper bound is
  // the lower bound of the lexicographic successor prefix (increment the
  // last non-'1' bit, dropping trailing '1's; all-'1' prefixes run to end()).
  auto prefix_range = [&](std::string prefix) {
    auto cmp = [](const auto& e, const std::string& v) { return e.first < v; };
    auto lo = std::lower_bound(by_path.begin(), by_path.end(), prefix, cmp);
    while (!prefix.empty() && prefix.back() == '1') prefix.pop_back();
    auto hi = by_path.end();
    if (!prefix.empty()) {
      prefix.back() = '1';
      hi = std::lower_bound(by_path.begin(), by_path.end(), prefix, cmp);
    }
    return std::make_pair(lo, hi);
  };

  for (PGridPeer* p : peers) {
    const Key& path = p->path();
    for (int level = 0; level < path.length(); ++level) {
      // Complementary subtree at `level`: same first `level` bits, opposite
      // bit at `level`. Never contains p itself.
      std::string prefix =
          path.Prefix(level).bits() + (path.bit(level) ? '0' : '1');
      auto [lo, hi] = prefix_range(prefix);
      const auto m = size_t(hi - lo);
      if (m == 0) continue;
      if (m <= size_t(refs_per_level) * 4) {
        // Small pool: uniform without-replacement via shuffle, as before.
        std::vector<NodeId> candidates;
        candidates.reserve(m);
        for (auto it = lo; it != hi; ++it) candidates.push_back(it->second->id());
        rng->Shuffle(&candidates);
        int take = std::min<int>(refs_per_level, int(candidates.size()));
        for (int i = 0; i < take; ++i) {
          p->routing()->AddRef(level, candidates[size_t(i)]);
        }
      } else {
        // Large pool: rejection-sample indexes (AddRef dedups). With the
        // pool at least 4x the draw count, a handful of attempts suffices.
        int added = 0;
        for (int attempt = 0; attempt < refs_per_level * 4 &&
                              added < refs_per_level;
             ++attempt) {
          NodeId id = (lo + ptrdiff_t(rng->UniformInt(0, int64_t(m) - 1)))
                          ->second->id();
          if (p->routing()->AddRef(level, id)) ++added;
        }
      }
    }
    // Replica set: identical paths. Trie paths are prefix-free, so the
    // prefix range of the full path holds exactly the replica group.
    auto [lo, hi] = prefix_range(path.bits());
    for (auto it = lo; it != hi; ++it) {
      PGridPeer* q = it->second;
      if (q != p && q->path() == path) p->routing()->AddReplica(q->id());
    }
  }
}

}  // namespace gridvine
