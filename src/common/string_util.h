#ifndef GRIDVINE_COMMON_STRING_UTIL_H_
#define GRIDVINE_COMMON_STRING_UTIL_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace gridvine {

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a delimiter string.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// SQL-LIKE style matching where '%' matches any run of characters. Used by
/// the local database selection operator for patterns such as "%Aspergillus%".
/// Matching is case-sensitive; no escape character or '_' wildcard.
bool LikeMatch(std::string_view value, std::string_view pattern);

/// Levenshtein edit distance.
size_t EditDistance(std::string_view a, std::string_view b);

/// Edit similarity in [0, 1]: 1 − dist / max(len); 1.0 for two empty strings.
double EditSimilarity(std::string_view a, std::string_view b);

/// The set of letter trigrams of the lower-cased string, padded with '$' at
/// both ends (so "go" yields {"$$g","$go","go$","o$$"}).
std::set<std::string> Trigrams(std::string_view s);

/// Dice coefficient over trigram sets in [0, 1].
double TrigramSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two string sets; 1.0 if both empty.
double JaccardSimilarity(const std::set<std::string>& a,
                         const std::set<std::string>& b);

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_STRING_UTIL_H_
