#ifndef GRIDVINE_STORE_BINDING_CODEC_H_
#define GRIDVINE_STORE_BINDING_CODEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "store/triple_store.h"

namespace gridvine {

/// Serializes binding rows for the wire (query responses). Format, per row:
/// "var=K:value" units joined by '\x1f', rows joined by '\x1e'. Values are
/// escaped ('\\' before '\x1e', '\x1f', '\\').
std::string SerializeBindings(const std::vector<BindingSet>& rows);

/// Inverse of SerializeBindings.
Result<std::vector<BindingSet>> ParseBindings(const std::string& data);

}  // namespace gridvine

#endif  // GRIDVINE_STORE_BINDING_CODEC_H_
