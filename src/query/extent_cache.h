#ifndef GRIDVINE_QUERY_EXTENT_CACHE_H_
#define GRIDVINE_QUERY_EXTENT_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gridvine {

/// Responder-side result/extent cache for the serving layer (paper-scale
/// flash crowds hit the same reformulated patterns over and over, so the
/// peer that owns a hot key region re-matches an identical pattern — or an
/// identical bound-probe batch — thousands of times).
///
/// Keying follows the ReformulationCache recipe, extended to data instead of
/// mappings: the pattern serialization is interned once into a small id
/// table ("interned pattern ids"), and the bound-constant signature (the
/// serialized probe batch for bind-join scans; empty for full scans) is
/// hashed next to it. Entries remember the TripleStore::version() they were
/// computed against; any insert/erase/compaction bumps the store version and
/// a stale entry is dropped on its next lookup (counted as an
/// invalidation + miss). There is no explicit invalidation hook — one
/// integer compare per lookup, exactly like MappingGraph versioning.
///
/// Values are wire-ready: the serialized row payload plus the probe-index
/// demultiplexing tags, so a hit skips both matching and re-serialization.
/// Replication falls out for free: every replica of a key region runs its
/// own cache over its own store copy, so an extent is served from whichever
/// replica the request lands on.
///
/// Bounded by entries and bytes with LRU eviction. Not thread-safe (lives
/// inside a peer, like everything else).
class ExtentCache {
 public:
  struct Options {
    size_t max_entries = 4096;
    size_t max_bytes = 4u << 20;
  };
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;  ///< stale-version drops (also counted as misses)
    /// Hits whose cached extent is empty (row_count == 0) — the negative
    /// cache at work: a miss-shaped answer served without touching the
    /// store. Subset of `hits`.
    uint64_t negative_hits = 0;
  };
  /// A cached answer, exactly as it goes on the wire.
  struct Extent {
    std::string rows;                   ///< serialized bindings payload (may be "")
    std::vector<uint32_t> probe_index;  ///< per-row demux tags; empty for scans
    uint64_t row_count = 0;
  };

  ExtentCache() = default;
  explicit ExtentCache(Options options) : options_(options) {}

  /// Returns the cached extent for (pattern, probes) if present and computed
  /// at exactly `store_version`, else nullptr. A version mismatch drops the
  /// entry. The pointer is valid until the next non-const call.
  const Extent* Lookup(std::string_view pattern, std::string_view probes,
                       uint64_t store_version);

  /// Stores an extent computed at `store_version`, replacing any previous
  /// entry for the key, then evicts LRU entries past the configured bounds.
  void Insert(std::string_view pattern, std::string_view probes,
              uint64_t store_version, Extent extent);

  void Clear();

  const Stats& stats() const { return stats_; }
  size_t entries() const { return map_.size(); }
  size_t bytes() const { return bytes_; }
  size_t MemoryFootprint() const;

 private:
  struct Entry {
    std::string probes;  ///< full signature, verified on hit (hash is 32-bit)
    uint64_t store_version = 0;
    Extent extent;
    size_t charge = 0;  ///< byte accounting for this entry
    std::list<uint64_t>::iterator lru_it;
  };

  /// (interned pattern id << 32) | fnv1a32(probes). The pattern side is
  /// exact; the probe side is verified against Entry::probes on lookup, so a
  /// 32-bit collision degrades to a miss, never a wrong answer.
  uint64_t KeyOf(std::string_view pattern, std::string_view probes);
  static size_t ChargeOf(std::string_view probes, const Extent& e);
  void EraseEntry(std::unordered_map<uint64_t, Entry>::iterator it);
  void EvictToBounds();

  Options options_;
  Stats stats_;
  std::unordered_map<std::string, uint32_t> pattern_ids_;
  std::unordered_map<uint64_t, Entry> map_;
  std::list<uint64_t> lru_;  ///< front = most recently used, holds map keys
  size_t bytes_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_EXTENT_CACHE_H_
