#include "common/metrics.h"

#include <sstream>

namespace gridvine {

uint64_t& MetricsRegistry::Counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return it->second;
}

double& MetricsRegistry::Gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), 0.0).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::Histo(std::string_view name,
                                  std::vector<double> edges) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(std::move(edges)))
             .first;
  }
  return it->second;
}

void MetricsRegistry::Observe(std::string_view name, std::vector<double> edges,
                              double value) {
  Histo(name, std::move(edges)).Add(value);
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

void AppendJsonKey(std::ostringstream& os, const std::string& key) {
  os << "\"";
  for (char c : key) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << "\"";
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  os.precision(15);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(os, name);
    os << ": " << value;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(os, name);
    os << ": " << value;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(os, name);
    os << ": {\"count\": " << h.count() << ", \"p50\": " << h.Percentile(0.5)
       << ", \"p90\": " << h.Percentile(0.9)
       << ", \"p99\": " << h.Percentile(0.99) << ", \"buckets\": [";
    const auto& edges = h.edges();
    for (size_t b = 0; b < h.num_buckets(); ++b) {
      if (b > 0) os << ", ";
      os << "{\"le\": ";
      if (b < edges.size()) {
        os << edges[b];
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << h.bucket_count(b) << "}";
    }
    os << "]}";
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Flatten() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() * 4);
  for (const auto& [name, value] : counters_) {
    out.emplace_back(name, static_cast<double>(value));
  }
  for (const auto& [name, value] : gauges_) out.emplace_back(name, value);
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name + ".count", static_cast<double>(h.count()));
    out.emplace_back(name + ".p50", h.Percentile(0.5));
    out.emplace_back(name + ".p90", h.Percentile(0.9));
    out.emplace_back(name + ".p99", h.Percentile(0.99));
  }
  return out;
}

}  // namespace gridvine
