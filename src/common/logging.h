#ifndef GRIDVINE_COMMON_LOGGING_H_
#define GRIDVINE_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace gridvine {

/// Log severities, coarsest filter wins.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded. Defaults to
/// kWarning so tests and benches stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Per-component minimum level for GV_CLOG, overridable without recompiling
/// through the GV_LOG environment variable (parsed once, on first use):
///
///   GV_LOG=debug                      everything at debug
///   GV_LOG=pgrid=debug                only the pgrid component at debug
///   GV_LOG=info,gridvine=debug        default info, gridvine at debug
///
/// Components without an override use the bare-level entry if present, else
/// the process-wide GetLogLevel(). Unknown level names are ignored.
LogLevel LogLevelFor(std::string_view component);

/// Test hook: re-parse from `spec` instead of the environment (nullptr
/// restores environment parsing on next use).
namespace internal {
void ResetLogSpecForTest(const char* spec);
}  // namespace internal

namespace internal {

/// Stream-style log sink; flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  /// For GV_CLOG: the caller decides enablement (per-component threshold).
  LogMessage(LogLevel level, const char* file, int line, bool enabled);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gridvine

#define GV_LOG(level)                                                  \
  ::gridvine::internal::LogMessage(::gridvine::LogLevel::k##level,     \
                                   __FILE__, __LINE__)

/// Component-scoped logging: GV_CLOG("pgrid", Debug) << ... obeys the
/// per-component threshold from the GV_LOG environment variable.
#define GV_CLOG(component, level)                                      \
  ::gridvine::internal::LogMessage(                                    \
      ::gridvine::LogLevel::k##level, __FILE__, __LINE__,              \
      ::gridvine::LogLevel::k##level >=                                \
          ::gridvine::LogLevelFor(component))

#endif  // GRIDVINE_COMMON_LOGGING_H_
