// Tests for the GridVineNetwork harness itself plus cross-cutting
// mediation-layer behaviours: result streaming, multi-domain registries,
// and wrapper ergonomics.

#include "gridvine/gridvine_network.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace gridvine {
namespace {

Triple T(const std::string& s, const std::string& p, const std::string& o) {
  return Triple(Term::Uri(s), Term::Uri(p), Term::Literal(o));
}

GridVineNetwork::Options SmallNet(uint64_t seed) {
  GridVineNetwork::Options o;
  o.num_peers = 16;
  o.key_depth = 14;
  o.seed = seed;
  o.latency = GridVineNetwork::LatencyKind::kConstant;
  o.latency_param = 0.01;
  o.peer.query_timeout = 3.0;
  return o;
}

TEST(GridVineNetworkTest, PeersShareOneKeySpace) {
  GridVineNetwork net(SmallNet(3));
  EXPECT_EQ(net.size(), 16u);
  // Hashers agree across peers (same depth => same keys).
  EXPECT_EQ(net.peer(0)->hasher()("EMBL"), net.peer(9)->hasher()("EMBL"));
  // Overlay peers enumerate in id order.
  auto overlay = net.overlay_peers();
  ASSERT_EQ(overlay.size(), 16u);
  for (size_t i = 0; i < overlay.size(); ++i) {
    EXPECT_EQ(overlay[i]->id(), NodeId(i));
  }
}

TEST(GridVineNetworkTest, SyncHelpersPropagateErrors) {
  GridVineNetwork net(SmallNet(4));
  // Invalid schema fails synchronously through the wrapper.
  EXPECT_TRUE(net.InsertSchema(0, Schema("", "d", {})).IsInvalidArgument());
  Triple bad(Term::Literal("not-a-uri"), Term::Uri("p"), Term::Literal("o"));
  EXPECT_TRUE(net.InsertTriple(0, bad).IsInvalidArgument());
}

TEST(GridVineNetworkTest, SeparateDomainsHaveSeparateRegistries) {
  GridVineNetwork net(SmallNet(5));
  // Protein and nucleotide domains publish independently.
  ASSERT_TRUE(net.PublishDegree(0, "protein-sequences", "EMBL", 1, 2).ok());
  ASSERT_TRUE(net.PublishDegree(1, "protein-sequences", "EMP", 2, 1).ok());
  ASSERT_TRUE(net.PublishDegree(2, "nucleotide-sequences", "GenBank", 0, 0).ok());

  auto protein = net.FetchDomainDegrees(7, "protein-sequences");
  ASSERT_TRUE(protein.ok());
  EXPECT_EQ(protein->size(), 2u);
  auto nucleotide = net.FetchDomainDegrees(7, "nucleotide-sequences");
  ASSERT_TRUE(nucleotide.ok());
  ASSERT_EQ(nucleotide->size(), 1u);
  EXPECT_EQ((*nucleotide)[0].schema, "GenBank");
  // An unknown domain is empty (NotFound is acceptable too, but the current
  // semantics return an empty registry only when the key space holds other
  // records; assert it does not leak foreign domains).
  auto other = net.FetchDomainDegrees(7, "metabolic-pathways");
  if (other.ok()) {
    EXPECT_TRUE(other->empty());
  }
}

TEST(GridVineNetworkTest, StreamingHookSeesAnswersAsTheyArrive) {
  GridVineNetwork net(SmallNet(9));
  ASSERT_TRUE(net.InsertSchema(0, Schema("A", "d", {"organism"})).ok());
  ASSERT_TRUE(net.InsertSchema(1, Schema("B", "d", {"organism"})).ok());
  ASSERT_TRUE(
      net.InsertTriple(0, T("a1", "A#organism", "Aspergillus niger")).ok());
  ASSERT_TRUE(
      net.InsertTriple(1, T("b1", "B#organism", "Aspergillus flavus")).ok());
  SchemaMapping m("ab", "A", "B");
  ASSERT_TRUE(m.AddCorrespondence("A#organism", "B#organism").ok());
  ASSERT_TRUE(net.InsertMapping(0, m).ok());

  struct Event {
    std::string schema;
    size_t rows;
    SimTime arrival;
  };
  std::vector<Event> events;
  GridVinePeer::QueryOptions opts;
  opts.reformulate = true;
  opts.on_answer = [&](const std::string& schema, size_t rows,
                       SimTime arrival) {
    events.push_back({schema, rows, arrival});
  };
  TriplePatternQuery q(
      "x", TriplePattern(Term::Var("x"), Term::Uri("A#organism"),
                         Term::Literal("%Aspergillus%")));
  auto res = net.SearchFor(5, q, opts);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.items.size(), 2u);
  // Both schemas streamed an answer batch, in arrival order, before the
  // final aggregate.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].arrival, events[1].arrival);
  std::set<std::string> schemas = {events[0].schema, events[1].schema};
  EXPECT_TRUE(schemas.count("A"));
  EXPECT_TRUE(schemas.count("B"));
}

TEST(GridVineNetworkTest, SettleDrainsInFlightTraffic) {
  GridVineNetwork net(SmallNet(6));
  // Fire-and-forget some async operations, then settle.
  bool done = false;
  net.peer(0)->InsertTriple(T("s1", "P#a", "v"), [&](Status) { done = true; });
  net.Settle();
  EXPECT_TRUE(done);
  EXPECT_EQ(net.sim()->pending(), 0u);
}

TEST(GridVineNetworkTest, QueryAcrossRestartsOfSameSeedIsDeterministic) {
  auto run_once = [](uint64_t seed) {
    GridVineNetwork net(SmallNet(seed));
    for (int i = 0; i < 12; ++i) {
      EXPECT_TRUE(net.InsertTriple(size_t(i % net.size()),
                                   T("id" + std::to_string(i), "S#organism",
                                     i % 2 ? "Aspergillus niger"
                                           : "Penicillium"))
                      .ok());
    }
    TriplePatternQuery q(
        "x", TriplePattern(Term::Var("x"), Term::Uri("S#organism"),
                           Term::Literal("%Aspergillus%")));
    auto res = net.SearchFor(3, q);
    std::vector<std::string> values;
    for (const auto& item : res.items) values.push_back(item.value.value());
    return std::make_pair(values, res.latency);
  };
  auto a = run_once(42);
  auto b = run_once(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
  auto c = run_once(43);
  EXPECT_EQ(a.first.size(), c.first.size());  // same data, different timing
}

}  // namespace
}  // namespace gridvine
