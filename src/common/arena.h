#ifndef GRIDVINE_COMMON_ARENA_H_
#define GRIDVINE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace gridvine {

/// Chunked bump allocator. One Arena backs the variable-length payloads of a
/// component (dictionary strings, slot payloads): allocation is a pointer
/// bump, deallocation happens only wholesale (Reset / destruction), and the
/// per-allocation overhead is zero — no malloc header, no free-list node.
/// That is exactly the lifetime shape of per-peer interned state, and at
/// 100k–1M simulated peers the headers and fragmentation of one heap
/// allocation per string dominate the strings themselves.
///
/// Not thread-safe; each owning component allocates from its own arena (the
/// sharded simulator partitions peers across threads, so a peer's arena is
/// only ever touched by its shard).
class Arena {
 public:
  /// `min_chunk_bytes` sizes the first chunk; subsequent chunks double up to
  /// kMaxChunkBytes. Allocations larger than a chunk get a dedicated chunk.
  explicit Arena(size_t min_chunk_bytes = 1024)
      : next_chunk_bytes_(min_chunk_bytes < 64 ? 64 : min_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `n` bytes aligned to `align` (a power of two). n == 0 returns a
  /// valid one-past pointer that must not be dereferenced.
  void* Allocate(size_t n, size_t align = alignof(std::max_align_t)) {
    uintptr_t p = (pos_ + (align - 1)) & ~uintptr_t(align - 1);
    if (p + n > end_) return AllocateSlow(n, align);
    pos_ = p + n;
    used_ += n;
    return reinterpret_cast<void*>(p);
  }

  /// Copies `s` into the arena and returns a view of the stable copy.
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return std::string_view(reinterpret_cast<const char*>(this), 0);
    char* p = static_cast<char*>(Allocate(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return std::string_view(p, s.size());
  }

  /// Discards every allocation but keeps the largest chunk for reuse, so an
  /// arena that is cleared and refilled reaches a steady state with no
  /// further heap traffic.
  void Reset() {
    if (chunks_.empty()) {
      pos_ = end_ = 0;
    } else {
      // Keep only the largest chunk (the newest one, by doubling).
      chunks_.erase(chunks_.begin(), chunks_.end() - 1);
      pos_ = reinterpret_cast<uintptr_t>(chunks_.back().data.get());
      end_ = pos_ + chunks_.back().size;
    }
    used_ = 0;
  }

  /// Bytes handed out to callers since construction / Reset (excludes
  /// padding and unused chunk tails).
  size_t bytes_used() const { return used_; }

  /// Bytes of chunk storage owned (what the arena costs the process).
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  void* AllocateSlow(size_t n, size_t align) {
    size_t want = n + align;  // worst-case alignment slack
    size_t size = next_chunk_bytes_;
    while (size < want) size *= 2;
    if (next_chunk_bytes_ < kMaxChunkBytes) {
      next_chunk_bytes_ = size * 2 < kMaxChunkBytes ? size * 2 : kMaxChunkBytes;
    }
    chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
    pos_ = reinterpret_cast<uintptr_t>(chunks_.back().data.get());
    end_ = pos_ + size;
    uintptr_t p = (pos_ + (align - 1)) & ~uintptr_t(align - 1);
    pos_ = p + n;
    used_ += n;
    return reinterpret_cast<void*>(p);
  }

  static constexpr size_t kMaxChunkBytes = size_t(1) << 20;  // 1 MiB

  std::vector<Chunk> chunks_;
  uintptr_t pos_ = 0;
  uintptr_t end_ = 0;
  size_t used_ = 0;
  size_t next_chunk_bytes_;
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_ARENA_H_
