#ifndef GRIDVINE_BENCH_TRACE_STATS_H_
#define GRIDVINE_BENCH_TRACE_STATS_H_

// Per-query statistics recovered from a trace snapshot. Benches enable the
// tracer, clear it before each query, and hand the snapshot plus the query's
// trace id here. A "hop" is any message flight span in the query's causal
// tree — request forwards, probe batches and responses alike — i.e. every
// span that is not an operation ("op.*") or executor ("exec.*") node.
// Retries are the "op.retry" markers the retrying layers emit.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/trace.h"

namespace gridvine {
namespace bench {

struct TraceQueryStats {
  size_t hops = 0;
  size_t retries = 0;
};

inline bool IsOperationSpan(std::string_view name) {
  return name.rfind("op.", 0) == 0 || name.rfind("exec.", 0) == 0;
}

inline TraceQueryStats HopsAndRetries(const std::vector<Tracer::Span>& spans,
                                      uint64_t trace_id) {
  TraceQueryStats st;
  for (const auto& s : spans) {
    if (s.trace_id != trace_id) continue;
    if (s.name == "op.retry") {
      ++st.retries;
    } else if (!IsOperationSpan(s.name)) {
      ++st.hops;
    }
  }
  return st;
}

/// Nearest-rank percentile over an unsorted count vector.
inline double CountPercentile(std::vector<size_t> counts, double p) {
  if (counts.empty()) return 0;
  std::sort(counts.begin(), counts.end());
  size_t idx = size_t(p * double(counts.size() - 1));
  return double(counts[idx]);
}

/// Aggregates per-query TraceAnalyzer::CriticalPathFor results into
/// time-weighted attribution shares — "where did the total latency go" over
/// the whole run, not an average of per-query ratios (a 10 s straggler
/// should weigh 100x a 100 ms query). AppendShares() emits the cp_* fields
/// the bench JSON rows carry.
class CriticalPathAgg {
 public:
  void Add(const TraceAnalyzer::CriticalPath& cp) {
    if (cp.total <= 0) return;
    ++queries_;
    sum_.total += cp.total;
    sum_.queue += cp.queue;
    sum_.service += cp.service;
    sum_.network += cp.network;
    sum_.retry += cp.retry;
    sum_.compute += cp.compute;
    shares_.push_back(cp.network / cp.total);
  }

  size_t queries() const { return queries_; }
  double total() const { return sum_.total; }
  double Share(double part) const {
    return sum_.total > 0 ? part / sum_.total : 0;
  }

  void AppendShares(std::vector<std::pair<std::string, double>>* out) const {
    out->emplace_back("cp_queries", double(queries_));
    out->emplace_back("cp_queue_share", Share(sum_.queue));
    out->emplace_back("cp_service_share", Share(sum_.service));
    out->emplace_back("cp_network_share", Share(sum_.network));
    out->emplace_back("cp_retry_share", Share(sum_.retry));
    out->emplace_back("cp_compute_share", Share(sum_.compute));
    // The per-query network share distribution: a high p90 with a modest
    // aggregate share means stragglers are network-bound.
    std::vector<double> s = shares_;
    std::sort(s.begin(), s.end());
    auto pct = [&s](double p) {
      return s.empty() ? 0.0 : s[size_t(p * double(s.size() - 1))];
    };
    out->emplace_back("cp_network_share_p50", pct(0.50));
    out->emplace_back("cp_network_share_p90", pct(0.90));
  }

  void Print(const char* indent = "  ") const {
    std::printf(
        "%scritical path (time-weighted, %zu traced): queue=%.0f%% "
        "service=%.0f%% network=%.0f%% retry=%.0f%% compute=%.0f%%\n",
        indent, queries_, Share(sum_.queue) * 100, Share(sum_.service) * 100,
        Share(sum_.network) * 100, Share(sum_.retry) * 100,
        Share(sum_.compute) * 100);
  }

 private:
  TraceAnalyzer::CriticalPath sum_;
  std::vector<double> shares_;
  size_t queries_ = 0;
};

}  // namespace bench
}  // namespace gridvine

#endif  // GRIDVINE_BENCH_TRACE_STATS_H_
