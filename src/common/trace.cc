#include "common/trace.h"

#include <cmath>
#include <sstream>

namespace gridvine {

void Tracer::Enable(size_t capacity) {
  enabled_ = true;
  capacity_ = capacity == 0 ? 1 : capacity;
}

void Tracer::Clear() {
  ring_.clear();
  index_.clear();
  head_ = 0;
  evicted_ = 0;
}

Tracer::Span* Tracer::Find(TraceCtx ctx) {
  if (!enabled_ || !ctx.valid()) return nullptr;
  auto it = index_.find(ctx.span_id);
  if (it == index_.end()) return nullptr;
  return &ring_[it->second];
}

TraceCtx Tracer::Open(std::string_view name, uint64_t trace_id,
                      uint64_t parent_id) {
  Span span;
  span.span_id = next_id_++;
  span.trace_id = trace_id == 0 ? span.span_id : trace_id;
  span.parent_id = parent_id;
  span.name = name;
  span.start = Now();
  size_t slot;
  if (ring_.size() < capacity_) {
    slot = ring_.size();
    ring_.push_back(std::move(span));
  } else {
    // Ring full: overwrite the oldest slot. Its span is gone for good —
    // unhook it from the open-span index too.
    slot = head_;
    head_ = (head_ + 1) % capacity_;
    index_.erase(ring_[slot].span_id);
    ring_[slot] = std::move(span);
    ++evicted_;
  }
  index_.emplace(ring_[slot].span_id, slot);
  return TraceCtx{ring_[slot].trace_id, ring_[slot].span_id};
}

TraceCtx Tracer::StartTrace(std::string_view name) {
  if (!enabled_) return TraceCtx{};
  return Open(name, 0, 0);
}

TraceCtx Tracer::StartSpan(std::string_view name, TraceCtx parent) {
  if (!enabled_) return TraceCtx{};
  if (!parent.valid()) return Open(name, 0, 0);
  return Open(name, parent.trace_id, parent.span_id);
}

void Tracer::EndSpan(TraceCtx ctx) {
  Span* span = Find(ctx);
  if (span != nullptr && span->end < 0) span->end = Now();
}

TraceCtx Tracer::Instant(std::string_view name, TraceCtx parent) {
  TraceCtx ctx = StartSpan(name, parent);
  EndSpan(ctx);
  return ctx;
}

void Tracer::Annotate(TraceCtx ctx, std::string_view key, double value) {
  Span* span = Find(ctx);
  if (span == nullptr) return;
  Annotation a;
  a.key.assign(key);
  a.is_number = true;
  a.number = value;
  span->annotations.push_back(std::move(a));
}

void Tracer::Annotate(TraceCtx ctx, std::string_view key,
                      std::string_view value) {
  Span* span = Find(ctx);
  if (span == nullptr) return;
  Annotation a;
  a.key.assign(key);
  a.is_number = false;
  a.text.assign(value);
  span->annotations.push_back(std::move(a));
}

std::vector<Tracer::Span> Tracer::Snapshot() const {
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Oldest first: once wrapped, the oldest live span sits at head_.
  const size_t n = ring_.size();
  const size_t start = n < capacity_ ? 0 : head_;
  for (size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % n]);
  return out;
}

namespace {

void AppendJsonEscaped(std::ostringstream& os, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
      continue;
    }
    os << c;
  }
}

void AppendJsonNumber(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

std::string Tracer::ToChromeJson() const {
  std::ostringstream os;
  os.precision(15);
  os << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  const std::vector<Span> spans = Snapshot();
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    const double end = s.end < 0 ? s.start : s.end;
    os << "  {\"name\": \"";
    AppendJsonEscaped(os, s.name);
    os << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << s.trace_id
       << ", \"ts\": ";
    AppendJsonNumber(os, s.start * 1e6);
    os << ", \"dur\": ";
    AppendJsonNumber(os, (end - s.start) * 1e6);
    os << ", \"args\": {\"span_id\": " << s.span_id
       << ", \"parent_id\": " << s.parent_id;
    if (s.end < 0) os << ", \"open\": 1";
    for (const Annotation& a : s.annotations) {
      os << ", \"";
      AppendJsonEscaped(os, a.key);
      os << "\": ";
      if (a.is_number) {
        AppendJsonNumber(os, a.number);
      } else {
        os << "\"";
        AppendJsonEscaped(os, a.text);
        os << "\"";
      }
    }
    os << "}}" << (i + 1 < spans.size() ? "," : "") << "\n";
  }
  os << "]}\n";
  return os.str();
}

TraceAnalyzer::TraceAnalyzer(std::vector<Tracer::Span> spans)
    : spans_(std::move(spans)) {
  for (size_t i = 0; i < spans_.size(); ++i) {
    by_id_.emplace(spans_[i].span_id, i);
  }
}

const Tracer::Span* TraceAnalyzer::Find(uint64_t span_id) const {
  auto it = by_id_.find(span_id);
  return it == by_id_.end() ? nullptr : &spans_[it->second];
}

size_t TraceAnalyzer::CountNamed(std::string_view name) const {
  size_t n = 0;
  for (const auto& s : spans_) {
    if (s.name == name) ++n;
  }
  return n;
}

size_t TraceAnalyzer::CountNamed(std::string_view name,
                                 uint64_t trace_id) const {
  size_t n = 0;
  for (const auto& s : spans_) {
    if (s.trace_id == trace_id && s.name == name) ++n;
  }
  return n;
}

size_t TraceAnalyzer::OpenCount() const {
  size_t n = 0;
  for (const auto& s : spans_) {
    if (s.end < 0) ++n;
  }
  return n;
}

std::string TraceAnalyzer::CheckConsistency() const {
  if (by_id_.size() != spans_.size()) {
    return "duplicate span ids in snapshot";
  }
  for (const auto& s : spans_) {
    std::string where =
        "span " + std::to_string(s.span_id) + " (" + std::string(s.name) + ")";
    if (s.span_id == 0) return where + ": zero span id";
    if (s.parent_id == 0) {
      if (s.trace_id != s.span_id) {
        return where + ": root span with trace_id != span_id";
      }
      continue;
    }
    // Parents are always opened before their children, so parent_id <
    // span_id; any parent chain therefore strictly decreases and cannot
    // cycle.
    if (s.parent_id >= s.span_id) {
      return where + ": parent_id " + std::to_string(s.parent_id) +
             " not older than the span (cycle?)";
    }
    const Tracer::Span* parent = Find(s.parent_id);
    if (parent == nullptr) {
      return where + ": orphan (parent " + std::to_string(s.parent_id) +
             " missing)";
    }
    if (parent->trace_id != s.trace_id) {
      return where + ": trace id differs from parent's";
    }
  }
  return "";
}

}  // namespace gridvine
