#ifndef GRIDVINE_SELFORG_EMBEDDING_H_
#define GRIDVINE_SELFORG_EMBEDDING_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gridvine {

/// Precomputed attribute embeddings for the matcher's cosine channel
/// (ROADMAP "Embedding-Based Schema Mapping" direction: offline vectors +
/// cosine similarity, no network calls at match time).
///
/// Vectors are produced locally and deterministically: character trigrams
/// of the normalized attribute name plus trigrams of a sample of its
/// observed values, feature-hashed with a sign hash into a fixed dimension
/// and L2-normalized. Two independently-computed tables agree bit-for-bit,
/// so peers never exchange vectors — only the attribute URIs they already
/// gossip.
using Embedding = std::vector<float>;

/// Attribute URI -> precomputed vector.
using EmbeddingTable = std::map<std::string, Embedding>;

/// Embeds one attribute from its local name and (optionally) a sample of
/// observed values. `dim` must be > 0; typical is 64.
Embedding EmbedAttribute(const std::string& local_name,
                         const std::set<std::string>& values, int dim = 64);

/// Cosine similarity clamped to [0, 1] (sign hashing makes small negative
/// cosines possible for unrelated pairs; they carry no signal and clamp to
/// 0). Returns 0 when either vector is empty or all-zero, or dimensions
/// differ.
double CosineSimilarity(const Embedding& a, const Embedding& b);

}  // namespace gridvine

#endif  // GRIDVINE_SELFORG_EMBEDDING_H_
