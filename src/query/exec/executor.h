#ifndef GRIDVINE_QUERY_EXEC_EXECUTOR_H_
#define GRIDVINE_QUERY_EXEC_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/trace.h"
#include "query/exec/backend.h"
#include "query/exec/plan.h"
#include "query/planner.h"
#include "query/query.h"
#include "store/triple_store.h"

namespace gridvine {

/// Drives one PhysicalPlan over a QueryBackend. Each join-connected group
/// is an explicit operator state machine — scan, then (bind-)join steps —
/// and the groups run concurrently; when every group has settled, the tail
/// merges (cross-group join), projects and deduplicates.
///
/// Completion discipline: the done callback fires exactly once, only after
/// every group reached a terminal phase, which in turn requires every
/// outstanding backend call to have resolved. There is therefore never a
/// backend callback in flight once `done` has fired — the owner may destroy
/// the executor from (after) the done callback without racing one. A failed
/// group (e.g. a bind-join batch that exhausted its retries) does not abort
/// its siblings; the first failure becomes the result status once all
/// groups settle, so operator state never leaks.
class ConjunctiveExecutor {
 public:
  /// Issuer-side shipping accounting, for the bench and the experiments:
  /// rows pushed toward the data (probes) and rows shipped back.
  struct Metrics {
    uint64_t remote_scans = 0;
    uint64_t bind_joins = 0;
    uint64_t existence_checks = 0;
    uint64_t probe_rows = 0;  ///< binding rows pushed toward the data
    uint64_t scan_rows = 0;   ///< rows shipped back by full-extent scans
    uint64_t bound_rows = 0;  ///< rows shipped back by bind-joins
    uint64_t reoptimizations = 0;  ///< mid-flight plan-suffix switches
    uint64_t RowsShipped() const { return probe_rows + scan_rows + bound_rows; }
  };

  struct ExecResult {
    Status status;
    std::vector<BindingSet> rows;
    Metrics metrics;
    /// Observed full-extent cardinality per pattern index (parallel to the
    /// query's patterns); -1 where no full scan of that pattern ran. The
    /// issuer feeds these back into its statistics cache.
    std::vector<double> observed_extents;
  };
  using DoneCallback = std::function<void(ExecResult)>;

  /// `backend` must outlive the executor. The plan must have been produced
  /// from `query` (pattern indexes are resolved against it).
  ConjunctiveExecutor(const ConjunctiveQuery& query, PhysicalPlan plan,
                      QueryBackend* backend);

  ConjunctiveExecutor(const ConjunctiveExecutor&) = delete;
  ConjunctiveExecutor& operator=(const ConjunctiveExecutor&) = delete;

  /// Starts every group. `done` fires exactly once, possibly synchronously.
  void Run(DoneCallback done);

  /// Records per-operator spans ("exec.scan" / "exec.bind_join" /
  /// "exec.exists" / "exec.finalize", with row and probe counts) as children
  /// of `parent`, and hands each operator's span to the backend via
  /// SetCallCtx so transport dispatches nest under it. Call before Run().
  void EnableTracing(Tracer* tracer, TraceCtx parent);

  /// Arms mid-flight re-optimization: whenever a group's observed running
  /// cardinality diverges from the plan's estimate by more than
  /// `divergence_factor` (either direction), the group's unexecuted operator
  /// suffix is re-planned (PlanGroupSuffix) against the observed cardinality
  /// and spliced in. `plan_options` must carry the estimates the plan was
  /// built from; a plan without est_cards (greedy) never re-optimizes. Call
  /// before Run().
  void EnableAdaptive(PlanOptions plan_options, double divergence_factor);

  const Metrics& metrics() const { return metrics_; }

 private:
  enum class GroupPhase { kRunning, kWaiting, kDone, kFailed };

  /// One group's operator state machine.
  struct GroupState {
    size_t step = 0;  ///< next step in the group's chain
    GroupPhase phase = GroupPhase::kRunning;
    Status status;
    bool acc_init = false;
    std::vector<BindingSet> acc;      ///< the running binding set
    std::vector<BindingSet> pending;  ///< last scan's rows, pre-LocalJoin
    /// Bind-join bookkeeping: which acc rows each probe stands for.
    std::vector<std::vector<size_t>> probe_members;
    /// Patterns of this group already folded into acc (adaptive divergence
    /// checks index PlanGroup::est_cards with this).
    size_t patterns_done = 0;
    /// Pattern index of the scan currently in flight (observed-extent
    /// feedback); kNoPattern when none.
    size_t scan_pattern = PlanStep::kNoPattern;
    TraceCtx op_span;  ///< the operator currently waiting on the backend
  };

  const TriplePattern& PatternOf(const PlanStep& step) const;

  /// Advances group `gi` until it blocks on a backend call or terminates.
  void StepGroup(size_t gi);
  /// Adaptive path: compares group `gi`'s observed running cardinality with
  /// the plan estimate and re-plans + splices the remaining operator suffix
  /// on divergence. No-op unless EnableAdaptive was called.
  void MaybeReplan(size_t gi);
  void OnScan(size_t gi, QueryBackend::ScanResult r);
  void OnBoundScan(size_t gi, QueryBackend::BoundScanResult r);
  void OnExists(size_t gi, Result<bool> r);
  void GroupDone(size_t gi, Status status);

  /// Runs the tail over the groups' outputs and fires `done_`.
  void Finalize();

  /// Opens an operator span under trace_parent_ and routes it to the
  /// backend; the invalid ctx when tracing is off.
  TraceCtx StartOp(std::string_view name);
  void EndOp(TraceCtx* span, std::string_view key, double value);

  ConjunctiveQuery query_;
  PhysicalPlan plan_;
  QueryBackend* backend_;
  std::vector<GroupState> groups_;
  size_t unsettled_groups_ = 0;
  Metrics metrics_;
  DoneCallback done_;
  Tracer* tracer_ = nullptr;
  TraceCtx trace_parent_{};
  bool adaptive_ = false;
  PlanOptions adaptive_options_;
  double divergence_ = 4.0;
  /// Per-pattern observed full-scan cardinalities; -1 = not observed.
  std::vector<double> observed_extents_;
};

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_EXEC_EXECUTOR_H_
