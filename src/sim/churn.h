#ifndef GRIDVINE_SIM_CHURN_H_
#define GRIDVINE_SIM_CHURN_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace gridvine {

/// Drives peer churn: alternates each managed node between online sessions
/// and offline gaps with exponentially distributed durations, the standard
/// model for P2P membership dynamics. P-Grid's replica sets σ(p) are what
/// keep lookups succeeding under this process (tested in integration tests).
///
/// Rejoin contract: ChurnModel only flips Network liveness — a rejoining
/// node resumes with whatever routing state it had when it went down, which
/// is stale by one downtime. Re-entering the overlay (probing refs, running
/// an online exchange) is the owner's job: register a transition listener
/// and, on `alive == true`, kick the peer's OnlineExchangeAgent /
/// MaintenanceAgent (see tests/fault_harness.h for the wiring). The listener
/// fires after the liveness flip, so a rejoin handler can send immediately.
class ChurnModel {
 public:
  /// Observes every liveness transition this model performs.
  using TransitionListener = std::function<void(NodeId id, bool alive)>;

  struct Options {
    double mean_session_seconds = 600.0;
    double mean_downtime_seconds = 60.0;
    /// Nodes never taken down (e.g. the experiment's query issuers).
    std::vector<NodeId> pinned;
  };

  ChurnModel(Simulator* sim, Network* network, Rng rng, Options options)
      : sim_(sim), network_(network), rng_(rng), options_(options) {}

  void SetTransitionListener(TransitionListener listener) {
    listener_ = std::move(listener);
  }

  /// Starts the on/off process for every currently registered node. Each node
  /// begins alive and is first taken down after a full session duration.
  void Start();

  /// Stops scheduling further transitions (already scheduled ones still fire
  /// but become no-ops).
  void Stop() { running_ = false; }

  uint64_t transitions() const { return transitions_; }

 private:
  bool IsPinned(NodeId id) const;
  void ScheduleNext(NodeId id, bool currently_alive);

  Simulator* sim_;
  Network* network_;
  Rng rng_;
  Options options_;
  bool running_ = false;
  uint64_t transitions_ = 0;
  TransitionListener listener_;
};

}  // namespace gridvine

#endif  // GRIDVINE_SIM_CHURN_H_
