#ifndef GRIDVINE_BENCH_TRACE_STATS_H_
#define GRIDVINE_BENCH_TRACE_STATS_H_

// Per-query statistics recovered from a trace snapshot. Benches enable the
// tracer, clear it before each query, and hand the snapshot plus the query's
// trace id here. A "hop" is any message flight span in the query's causal
// tree — request forwards, probe batches and responses alike — i.e. every
// span that is not an operation ("op.*") or executor ("exec.*") node.
// Retries are the "op.retry" markers the retrying layers emit.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/trace.h"

namespace gridvine {
namespace bench {

struct TraceQueryStats {
  size_t hops = 0;
  size_t retries = 0;
};

inline bool IsOperationSpan(std::string_view name) {
  return name.rfind("op.", 0) == 0 || name.rfind("exec.", 0) == 0;
}

inline TraceQueryStats HopsAndRetries(const std::vector<Tracer::Span>& spans,
                                      uint64_t trace_id) {
  TraceQueryStats st;
  for (const auto& s : spans) {
    if (s.trace_id != trace_id) continue;
    if (s.name == "op.retry") {
      ++st.retries;
    } else if (!IsOperationSpan(s.name)) {
      ++st.hops;
    }
  }
  return st;
}

/// Nearest-rank percentile over an unsorted count vector.
inline double CountPercentile(std::vector<size_t> counts, double p) {
  if (counts.empty()) return 0;
  std::sort(counts.begin(), counts.end());
  size_t idx = size_t(p * double(counts.size() - 1));
  return double(counts[idx]);
}

}  // namespace bench
}  // namespace gridvine

#endif  // GRIDVINE_BENCH_TRACE_STATS_H_
