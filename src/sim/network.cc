#include "sim/network.h"

#include <string>
#include <utility>

#include "common/metrics.h"

namespace gridvine {

namespace {

std::string_view DropCauseName(DropCause cause) {
  switch (cause) {
    case DropCause::kEndpoint: return "endpoint";
    case DropCause::kLoss: return "loss";
    case DropCause::kBurstLoss: return "burst";
    case DropCause::kPartition: return "partition";
  }
  return "?";
}

}  // namespace

uint64_t NetworkStats::MessagesForType(std::string_view name) const {
  MsgType t = MsgType::Find(name);
  if (t.unknown() || t.id() >= messages_by_type.size()) return 0;
  return messages_by_type[t.id()];
}

uint64_t NetworkStats::BytesForType(std::string_view name) const {
  MsgType t = MsgType::Find(name);
  if (t.unknown() || t.id() >= bytes_by_type.size()) return 0;
  return bytes_by_type[t.id()];
}

uint64_t NetworkStats::DropsForType(std::string_view name) const {
  MsgType t = MsgType::Find(name);
  if (t.unknown() || t.id() >= drops_by_type.size()) return 0;
  return drops_by_type[t.id()];
}

std::map<std::string, uint64_t> NetworkStats::MessagesByTypeName() const {
  std::map<std::string, uint64_t> out;
  for (uint32_t id = 0; id < messages_by_type.size(); ++id) {
    if (messages_by_type[id] != 0) out.emplace(MsgType::NameOf(id), messages_by_type[id]);
  }
  return out;
}

Network::Network(Simulator* sim, std::unique_ptr<LatencyModel> latency,
                 Rng rng, double loss_probability)
    : sim_(sim),
      latency_(std::move(latency)),
      rng_(rng),
      loss_probability_(loss_probability) {}

NodeId Network::AddNode(NetworkNode* node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeSlot{node, true});
  return id;
}

void Network::SetAlive(NodeId id, bool alive) {
  if (id < nodes_.size()) nodes_[id].alive = alive;
}

bool Network::IsAlive(NodeId id) const {
  return id < nodes_.size() && nodes_[id].alive;
}

void Network::CountSend(MsgType type, size_t bytes) {
  // Grow to the full registry size in one step so a burst of new types costs
  // at most one reallocation, and established types never reallocate. The
  // drop vector is sized here too (not on first drop) so drop attribution
  // never allocates on the steady-state path.
  if (type.id() >= stats_.messages_by_type.size()) {
    size_t n = MsgType::RegistryCount();
    stats_.messages_by_type.resize(n, 0);
    stats_.bytes_by_type.resize(n, 0);
    stats_.drops_by_type.resize(n, 0);
  }
  ++stats_.messages_by_type[type.id()];
  stats_.bytes_by_type[type.id()] += bytes;
}

void Network::CountDrop(MsgType type, DropCause cause) {
  ++stats_.messages_dropped;
  switch (cause) {
    case DropCause::kEndpoint: ++stats_.drops_endpoint; break;
    case DropCause::kLoss: ++stats_.drops_loss; break;
    case DropCause::kBurstLoss: ++stats_.drops_burst; break;
    case DropCause::kPartition: ++stats_.drops_partition; break;
  }
  // CountSend sizes the vector for every type this network sends, so this
  // growth step only triggers after a ResetStats() with messages still in
  // flight — never on the steady-state (zero-allocation) path.
  if (type.id() >= stats_.drops_by_type.size()) {
    stats_.drops_by_type.resize(MsgType::RegistryCount(), 0);
  }
  ++stats_.drops_by_type[type.id()];
}

void Network::EndDropped(TraceCtx flight, DropCause cause) {
  if (!flight.valid()) return;
  tracer_->Annotate(flight, "drop", DropCauseName(cause));
  tracer_->EndSpan(flight);
}

void Network::Send(NodeId from, NodeId to,
                   std::shared_ptr<const MessageBody> body) {
  const size_t bytes = body->SizeBytes();
  const MsgType type = body->TypeTag();
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  CountSend(type, bytes);

  // Flight span: parented on the sender's explicit ctx if set, else on the
  // delivery being handled (ambient). No parent — background traffic nobody
  // is tracing — records nothing, and with no tracer at all this whole block
  // is one pointer test (the zero-allocation default).
  TraceCtx flight{};
  if (tracer_ != nullptr && tracer_->enabled()) {
    const TraceCtx parent =
        body->trace_ctx.valid() ? body->trace_ctx : delivery_ctx_;
    if (parent.valid()) {
      flight = tracer_->StartSpan(type.name(), parent);
      tracer_->Annotate(flight, "from", double(from));
      tracer_->Annotate(flight, "to", double(to));
      tracer_->Annotate(flight, "bytes", double(bytes));
    }
  }

  if (!IsAlive(from) || to >= nodes_.size() || !nodes_[to].alive) {
    CountDrop(type, DropCause::kEndpoint);
    EndDropped(flight, DropCause::kEndpoint);
    return;
  }
  if (loss_probability_ > 0 && rng_.Bernoulli(loss_probability_)) {
    CountDrop(type, DropCause::kLoss);
    EndDropped(flight, DropCause::kLoss);
    return;
  }
  // Fault plan last, in a fixed order (partitions, then bursts, then
  // duplication), so a given seed consumes Rng draws identically run to run.
  if (fault_plan_) {
    DropCause cause;
    if (fault_plan_->ShouldDrop(sim_->Now(), from, to, &rng_, &cause)) {
      CountDrop(type, cause);
      EndDropped(flight, cause);
      return;
    }
    if (fault_plan_->ShouldDuplicate(&rng_)) {
      ++stats_.messages_duplicated;
      // The extra copy gets its own flight span, a child of the original's
      // (the duplicate exists because that send happened), so duplicated
      // deliveries stay attributable without double-counting the original.
      TraceCtx dup{};
      if (flight.valid()) {
        dup = tracer_->StartSpan(type.name(),
                                 TraceCtx{flight.trace_id, flight.span_id});
        tracer_->Annotate(dup, "duplicate", 1.0);
      }
      SimTime dup_delay = latency_->Sample(&rng_) +
                          fault_plan_->ExtraLatency(sim_->Now(), &rng_);
      if (dup.valid()) {
        sim_->Schedule(dup_delay, TracedDelivery{this, from, to, body, dup});
      } else {
        sim_->Schedule(dup_delay, Delivery{this, from, to, body});
      }
    }
  }

  SimTime delay = latency_->Sample(&rng_);
  if (fault_plan_) delay += fault_plan_->ExtraLatency(sim_->Now(), &rng_);
  if (flight.valid()) {
    sim_->Schedule(delay,
                   TracedDelivery{this, from, to, std::move(body), flight});
  } else {
    sim_->Schedule(delay, Delivery{this, from, to, std::move(body)});
  }
}

void Network::Deliver(NodeId from, NodeId to,
                      std::shared_ptr<const MessageBody> body, TraceCtx ctx) {
  // Liveness re-checked at delivery time: the node may have died in flight.
  if (to < nodes_.size() && nodes_[to].alive) {
    ++stats_.messages_delivered;
    if (ctx.valid() && tracer_ != nullptr) {
      tracer_->EndSpan(ctx);
      // Expose this delivery's flight ctx while the handler runs, so
      // anything it sends (forwards, replies) parents under this hop
      // without plumbing. Untraced deliveries skip the save/restore: the
      // event loop never nests deliveries, so delivery_ctx_ is already
      // invalid here and the stores would be dead.
      const TraceCtx prev = delivery_ctx_;
      delivery_ctx_ = ctx;
      nodes_[to].node->OnMessage(from, std::move(body));
      delivery_ctx_ = prev;
    } else {
      nodes_[to].node->OnMessage(from, std::move(body));
    }
  } else {
    CountDrop(body->TypeTag(), DropCause::kEndpoint);
    if (ctx.valid() && tracer_ != nullptr) EndDropped(ctx, DropCause::kEndpoint);
  }
}

void NetworkStats::Publish(MetricsRegistry* metrics) const {
  metrics->Counter("net.messages_sent") += messages_sent;
  metrics->Counter("net.messages_delivered") += messages_delivered;
  metrics->Counter("net.messages_dropped") += messages_dropped;
  metrics->Counter("net.messages_duplicated") += messages_duplicated;
  metrics->Counter("net.bytes_sent") += bytes_sent;
  metrics->Counter("net.drops.endpoint") += drops_endpoint;
  metrics->Counter("net.drops.loss") += drops_loss;
  metrics->Counter("net.drops.burst") += drops_burst;
  metrics->Counter("net.drops.partition") += drops_partition;
  for (uint32_t id = 0; id < messages_by_type.size(); ++id) {
    if (messages_by_type[id] == 0 &&
        (id >= drops_by_type.size() || drops_by_type[id] == 0)) {
      continue;
    }
    const std::string base = "net.msg." + std::string(MsgType::NameOf(id));
    metrics->Counter(base + ".sent") += messages_by_type[id];
    if (id < bytes_by_type.size()) {
      metrics->Counter(base + ".bytes") += bytes_by_type[id];
    }
    if (id < drops_by_type.size() && drops_by_type[id] != 0) {
      metrics->Counter(base + ".drops") += drops_by_type[id];
    }
  }
}

void NetworkStats::Accumulate(const NetworkStats& other) {
  messages_sent += other.messages_sent;
  messages_delivered += other.messages_delivered;
  messages_dropped += other.messages_dropped;
  messages_duplicated += other.messages_duplicated;
  bytes_sent += other.bytes_sent;
  drops_endpoint += other.drops_endpoint;
  drops_loss += other.drops_loss;
  drops_burst += other.drops_burst;
  drops_partition += other.drops_partition;
  auto fold = [](std::vector<uint64_t>* into, const std::vector<uint64_t>& from) {
    if (from.size() > into->size()) into->resize(from.size(), 0);
    for (size_t i = 0; i < from.size(); ++i) (*into)[i] += from[i];
  };
  fold(&messages_by_type, other.messages_by_type);
  fold(&bytes_by_type, other.bytes_by_type);
  fold(&drops_by_type, other.drops_by_type);
}

void Network::PublishMetrics(MetricsRegistry* metrics) const {
  stats_.Publish(metrics);
}

}  // namespace gridvine
