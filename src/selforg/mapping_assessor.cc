#include "selforg/mapping_assessor.h"

#include <algorithm>
#include <set>

namespace gridvine {

MappingAssessor::CycleObservation MappingAssessor::CheckCycle(
    const MappingGraph& graph, const std::vector<std::string>& cycle_ids) const {
  CycleObservation obs;
  obs.mapping_ids = cycle_ids;
  if (cycle_ids.empty()) return obs;

  // Orient each mapping along the traversal (bidirectional edges may be
  // walked backwards).
  auto first = graph.Get(cycle_ids[0]);
  if (!first.ok()) return obs;
  std::string home = first->source_schema();
  std::string cur = home;
  std::vector<SchemaMapping> oriented;
  for (const auto& id : cycle_ids) {
    auto m = graph.Get(id);
    if (!m.ok()) return obs;
    if (m->source_schema() == cur) {
      oriented.push_back(*m);
    } else if (m->bidirectional() && m->target_schema() == cur) {
      oriented.push_back(m->Reversed());
    } else {
      return obs;  // broken chain: no evidence
    }
    cur = oriented.back().target_schema();
  }
  if (cur != home) return obs;  // not a closed cycle

  // Chain every attribute of the home schema that the first mapping covers.
  int consistent = 0;
  int completed = 0;
  for (const auto& [attr, _] : oriented[0].correspondences()) {
    std::string walked = attr;
    bool complete = true;
    for (const auto& m : oriented) {
      auto next = m.MapAttribute(walked);
      if (!next.has_value()) {
        complete = false;
        break;
      }
      walked = *next;
    }
    if (!complete) continue;
    ++completed;
    if (walked == attr) ++consistent;
  }
  obs.attributes_checked = completed;
  if (completed < options_.min_chained_attributes) {
    obs.attributes_checked = 0;  // insufficient evidence
    return obs;
  }
  // Majority vote across the chained attributes.
  obs.consistent = 2 * consistent > completed;
  return obs;
}

MappingAssessor::Assessment MappingAssessor::Assess(
    const MappingGraph& graph) const {
  Assessment result;

  // Collect the automatic (assessable) mappings and their priors.
  std::map<std::string, double> prior;
  std::vector<std::string> auto_ids;
  for (const auto& schema : graph.Schemas()) {
    for (const auto& m : graph.MappingsFrom(schema)) {
      // MappingsFrom may return reversed views ("id~rev"); normalize.
      std::string id = m.id();
      if (id.size() > 4 && id.substr(id.size() - 4) == "~rev") {
        id = id.substr(0, id.size() - 4);
      }
      if (prior.count(id)) continue;
      auto orig = graph.Get(id);
      if (!orig.ok() || orig->deprecated()) continue;
      if (orig->provenance() == MappingProvenance::kManual) continue;
      double p = orig->confidence();
      prior[id] = (p > 0 && p < 1) ? p : options_.default_prior;
      auto_ids.push_back(id);
    }
  }

  // Enumerate cycles through every automatic mapping; deduplicate by the
  // (unordered) set of edges so each cycle is one factor.
  std::set<std::set<std::string>> seen_cycles;
  for (const auto& id : auto_ids) {
    for (const auto& cycle : graph.CyclesThrough(id, options_.max_cycle_len)) {
      std::set<std::string> key(cycle.begin(), cycle.end());
      if (!seen_cycles.insert(key).second) continue;
      CycleObservation obs = CheckCycle(graph, cycle);
      if (obs.attributes_checked > 0) {
        result.observations.push_back(std::move(obs));
      }
    }
  }

  // Factor scopes: only automatic mappings are variables; manual mappings in
  // a cycle are clamped correct and drop out of the factor.
  struct Factor {
    std::vector<std::string> vars;
    bool consistent;
  };
  std::vector<Factor> factors;
  for (const auto& obs : result.observations) {
    Factor f;
    f.consistent = obs.consistent;
    for (const auto& id : obs.mapping_ids) {
      if (prior.count(id)) f.vars.push_back(id);
    }
    if (!f.vars.empty()) factors.push_back(std::move(f));
  }

  // Loopy belief propagation (sum-product) on the bipartite factor graph.
  // msg_fv[f][i]: factor f -> variable f.vars[i], value = P(good).
  // msg_vf mirrors it in the other direction.
  std::vector<std::vector<double>> msg_fv(factors.size());
  std::vector<std::vector<double>> msg_vf(factors.size());
  for (size_t f = 0; f < factors.size(); ++f) {
    msg_fv[f].assign(factors[f].vars.size(), 0.5);
    msg_vf[f].resize(factors[f].vars.size());
    for (size_t i = 0; i < factors[f].vars.size(); ++i) {
      msg_vf[f][i] = prior.at(factors[f].vars[i]);
    }
  }
  // Index: variable -> (factor, slot) incidences.
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> incidence;
  for (size_t f = 0; f < factors.size(); ++f) {
    for (size_t i = 0; i < factors[f].vars.size(); ++i) {
      incidence[factors[f].vars[i]].push_back({f, i});
    }
  }

  const double eps = options_.epsilon;
  const double del = options_.delta;
  for (int iter = 0; iter < options_.bp_iterations; ++iter) {
    // Factor -> variable.
    for (size_t f = 0; f < factors.size(); ++f) {
      for (size_t i = 0; i < factors[f].vars.size(); ++i) {
        double q = 1.0;  // P(all *other* variables good)
        for (size_t j = 0; j < factors[f].vars.size(); ++j) {
          if (j != i) q *= msg_vf[f][j];
        }
        double mu_good, mu_bad;
        if (factors[f].consistent) {
          mu_good = (1 - eps) * q + del * (1 - q);
          mu_bad = del;
        } else {
          mu_good = eps * q + (1 - del) * (1 - q);
          mu_bad = 1 - del;
        }
        double z = mu_good + mu_bad;
        msg_fv[f][i] = z > 0 ? mu_good / z : 0.5;
      }
    }
    // Variable -> factor.
    for (const auto& [var, slots] : incidence) {
      for (const auto& [f, i] : slots) {
        double good = prior.at(var);
        double bad = 1 - prior.at(var);
        for (const auto& [f2, i2] : slots) {
          if (f2 == f && i2 == i) continue;
          good *= msg_fv[f2][i2];
          bad *= (1 - msg_fv[f2][i2]);
        }
        double z = good + bad;
        msg_vf[f][i] = z > 0 ? good / z : 0.5;
      }
    }
  }

  // Posteriors.
  for (const auto& id : auto_ids) {
    double good = prior.at(id);
    double bad = 1 - good;
    auto it = incidence.find(id);
    if (it != incidence.end()) {
      for (const auto& [f, i] : it->second) {
        good *= msg_fv[f][i];
        bad *= (1 - msg_fv[f][i]);
      }
    }
    double z = good + bad;
    result.posterior[id] = z > 0 ? good / z : prior.at(id);
  }
  return result;
}

}  // namespace gridvine
