#include "common/stats.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TEST(SampleStatsTest, EmptyIsSafe) {
  SampleStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Mean(), 0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 0);
  EXPECT_DOUBLE_EQ(s.FractionAtMost(10), 0);
  EXPECT_DOUBLE_EQ(s.Gini(), 0);
  EXPECT_EQ(s.Summary(), "n=0");
}

TEST(SampleStatsTest, Moments) {
  SampleStats s;
  s.AddAll({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 2.0);  // classic example
  EXPECT_DOUBLE_EQ(s.Min(), 2);
  EXPECT_DOUBLE_EQ(s.Max(), 9);
}

TEST(SampleStatsTest, PercentilesNearestRank) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.Add(double(i));
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100);
  EXPECT_NEAR(s.Median(), 50.0, 1.0);
  EXPECT_NEAR(s.Percentile(0.9), 90.0, 1.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(s.Percentile(-1), 1);
  EXPECT_DOUBLE_EQ(s.Percentile(2), 100);
}

TEST(SampleStatsTest, FractionAtMost) {
  SampleStats s;
  s.AddAll({0.5, 1.0, 1.5, 2.0});
  EXPECT_DOUBLE_EQ(s.FractionAtMost(0.4), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionAtMost(1.0), 0.5);
  EXPECT_DOUBLE_EQ(s.FractionAtMost(5.0), 1.0);
}

TEST(SampleStatsTest, GiniExtremes) {
  SampleStats even;
  even.AddAll({3, 3, 3, 3});
  EXPECT_NEAR(even.Gini(), 0.0, 1e-12);
  SampleStats skewed;
  skewed.AddAll({0, 0, 0, 100});
  EXPECT_GT(skewed.Gini(), 0.7);
}

TEST(SampleStatsTest, InterleavedAddAndQueryStaysSorted) {
  SampleStats s;
  s.Add(5);
  EXPECT_DOUBLE_EQ(s.Max(), 5);
  s.Add(1);
  EXPECT_DOUBLE_EQ(s.Min(), 1);
  s.Add(9);
  EXPECT_DOUBLE_EQ(s.Max(), 9);
  EXPECT_DOUBLE_EQ(s.Median(), 5);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h({1.0, 2.0, 5.0});
  h.Add(0.5);   // < 1
  h.Add(1.0);   // [1,2)
  h.Add(1.9);   // [1,2)
  h.Add(3.0);   // [2,5)
  h.Add(5.0);   // >= 5
  h.Add(100.0); // >= 5
  EXPECT_EQ(h.total(), 6u);
  std::string text = h.Format(10);
  EXPECT_NE(text.find("< 1"), std::string::npos);
  EXPECT_NE(text.find(">= 5"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(HistogramTest, ExponentialEdges) {
  Histogram h = Histogram::Exponential(0.001, 10.0, 4);
  ASSERT_EQ(h.edges().size(), 4u);
  EXPECT_DOUBLE_EQ(h.edges()[0], 0.001);
  EXPECT_DOUBLE_EQ(h.edges()[3], 1.0);
  EXPECT_EQ(h.num_buckets(), 5u);
}

TEST(HistogramTest, PercentileAnswersBucketUpperEdge) {
  Histogram h({1.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);  // empty
  for (int i = 0; i < 8; ++i) h.Add(1.5);  // [1,2)
  h.Add(4.0);                              // [2,5)
  h.Add(100.0);                            // overflow
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 2.0);   // containing bucket's upper edge
  EXPECT_DOUBLE_EQ(h.Percentile(0.9), 5.0);
  // Overflow bucket answers the last edge (its lower bound).
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 5.0);
  // Underflow answers the first edge.
  Histogram low({1.0, 2.0});
  low.Add(0.1);
  EXPECT_DOUBLE_EQ(low.Percentile(0.5), 1.0);
}

}  // namespace
}  // namespace gridvine
