#ifndef GRIDVINE_SELFORG_CONNECTIVITY_H_
#define GRIDVINE_SELFORG_CONNECTIVITY_H_

#include <utility>
#include <vector>

namespace gridvine {

/// The connectivity indicator of paper Section 3.1:
///
///   ci = Σ_{j,k} (jk − k) p_jk
///
/// where p_jk is the probability that a schema has in-degree j and out-degree
/// k. Over an observed degree sequence this is the empirical mean of
/// (j·k − k). The criterion derives from the generating-function analysis of
/// directed random graphs (Newman et al.; the paper's ODBASE'04 reference):
/// ci >= 0 signals the emergence of a giant (strongly) connected component;
/// while ci < 0 the mediation layer cannot be globally interoperable.
double ConnectivityIndicator(const std::vector<std::pair<int, int>>& degrees);

}  // namespace gridvine

#endif  // GRIDVINE_SELFORG_CONNECTIVITY_H_
