#include "query/planner.h"

#include <algorithm>
#include <climits>
#include <set>

namespace gridvine {

PatternCost ClassifyPattern(const TriplePattern& pattern) {
  if (pattern.IsExactConstant(TriplePos::kSubject)) {
    return PatternCost::kExactSubject;
  }
  if (pattern.IsExactConstant(TriplePos::kObject)) {
    return PatternCost::kExactObject;
  }
  if (pattern.IsExactConstant(TriplePos::kPredicate)) {
    return PatternCost::kExactPredicate;
  }
  if (pattern.ObjectRangePrefix().has_value()) return PatternCost::kRange;
  return PatternCost::kUnroutable;
}

std::vector<size_t> PlanConjunctive(const ConjunctiveQuery& query) {
  const auto& patterns = query.patterns();
  std::vector<size_t> remaining;
  for (size_t i = 0; i < patterns.size(); ++i) remaining.push_back(i);

  std::vector<size_t> order;
  std::set<std::string> bound_vars;
  while (!remaining.empty()) {
    // Among the remaining patterns, prefer (a) connected to already-bound
    // variables, then (b) the cheapest class, then (c) original position
    // (stability).
    size_t best_slot = 0;
    int best_rank = INT_MAX;
    for (size_t slot = 0; slot < remaining.size(); ++slot) {
      const TriplePattern& p = patterns[remaining[slot]];
      bool connected = order.empty();  // first pattern: no requirement
      for (const auto& var : p.Variables()) {
        if (bound_vars.count(var)) connected = true;
      }
      int rank = int(ClassifyPattern(p)) + (connected ? 0 : 10);
      if (rank < best_rank) {
        best_rank = rank;
        best_slot = slot;
      }
    }
    size_t chosen = remaining[best_slot];
    remaining.erase(remaining.begin() + ptrdiff_t(best_slot));
    order.push_back(chosen);
    for (const auto& var : patterns[chosen].Variables()) {
      bound_vars.insert(var);
    }
  }
  return order;
}

}  // namespace gridvine
