#include "mapping/schema_mapping.h"

#include <cstdlib>
#include <sstream>

#include "common/string_util.h"
#include "schema/schema.h"

namespace gridvine {

InternPool<SchemaMapping>& MappingPool() {
  static InternPool<SchemaMapping> pool;
  return pool;
}

Status SchemaMapping::AddCorrespondence(const std::string& source_attr_uri,
                                        const std::string& target_attr_uri) {
  if (Schema::SchemaOfUri(source_attr_uri) != source_schema_) {
    return Status::InvalidArgument("correspondence source " + source_attr_uri +
                                   " not in schema " + source_schema_);
  }
  if (Schema::SchemaOfUri(target_attr_uri) != target_schema_) {
    return Status::InvalidArgument("correspondence target " + target_attr_uri +
                                   " not in schema " + target_schema_);
  }
  correspondences_[source_attr_uri] = target_attr_uri;
  return Status::OK();
}

std::optional<std::string> SchemaMapping::MapAttribute(
    const std::string& source_attr_uri) const {
  auto it = correspondences_.find(source_attr_uri);
  if (it == correspondences_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> SchemaMapping::MapAttributeReverse(
    const std::string& target_attr_uri) const {
  for (const auto& [src, dst] : correspondences_) {
    if (dst == target_attr_uri) return src;
  }
  return std::nullopt;
}

SchemaMapping SchemaMapping::Reversed() const {
  SchemaMapping out(id_ + "~rev", target_schema_, source_schema_);
  out.type_ = type_;
  out.provenance_ = provenance_;
  out.bidirectional_ = bidirectional_;
  out.deprecated_ = deprecated_;
  out.confidence_ = confidence_;
  for (const auto& [src, dst] : correspondences_) {
    out.correspondences_[dst] = src;
  }
  return out;
}

Result<SchemaMapping> SchemaMapping::Compose(const SchemaMapping& other) const {
  if (target_schema_ != other.source_schema_) {
    return Status::InvalidArgument("cannot compose " + target_schema_ +
                                   " with " + other.source_schema_);
  }
  SchemaMapping out(id_ + "*" + other.id_, source_schema_,
                    other.target_schema_);
  // Composition weakens equivalence to the weaker of the two relations.
  out.type_ = (type_ == MappingType::kSubsumption ||
               other.type_ == MappingType::kSubsumption)
                  ? MappingType::kSubsumption
                  : MappingType::kEquivalence;
  out.provenance_ = MappingProvenance::kAutomatic;
  out.confidence_ = confidence_ * other.confidence_;
  for (const auto& [src, mid] : correspondences_) {
    auto dst = other.MapAttribute(mid);
    if (dst.has_value()) out.correspondences_[src] = *dst;
  }
  return out;
}

std::string SchemaMapping::Serialize() const {
  std::ostringstream out;
  out << "mapping|" << id_ << "|" << source_schema_ << "|" << target_schema_
      << "|" << (type_ == MappingType::kEquivalence ? "equiv" : "subsume")
      << "|" << (provenance_ == MappingProvenance::kManual ? "manual" : "auto")
      << "|" << (bidirectional_ ? 1 : 0) << "|" << (deprecated_ ? 1 : 0) << "|"
      << confidence_ << "|";
  bool first = true;
  for (const auto& [src, dst] : correspondences_) {
    if (!first) out << ";";
    first = false;
    out << src << ">" << dst;
  }
  return out.str();
}

Result<SchemaMapping> SchemaMapping::Parse(const std::string& line) {
  std::vector<std::string> parts = Split(line, '|');
  if (parts.size() != 10 || parts[0] != "mapping") {
    return Status::Corruption("not a mapping record: " + line);
  }
  SchemaMapping m(parts[1], parts[2], parts[3]);
  if (parts[4] == "equiv") {
    m.type_ = MappingType::kEquivalence;
  } else if (parts[4] == "subsume") {
    m.type_ = MappingType::kSubsumption;
  } else {
    return Status::Corruption("bad mapping type: " + parts[4]);
  }
  if (parts[5] == "manual") {
    m.provenance_ = MappingProvenance::kManual;
  } else if (parts[5] == "auto") {
    m.provenance_ = MappingProvenance::kAutomatic;
  } else {
    return Status::Corruption("bad provenance: " + parts[5]);
  }
  m.bidirectional_ = parts[6] == "1";
  m.deprecated_ = parts[7] == "1";
  char* end = nullptr;
  m.confidence_ = std::strtod(parts[8].c_str(), &end);
  if (end == parts[8].c_str() || *end != '\0') {
    return Status::Corruption("bad confidence: " + parts[8]);
  }
  if (!parts[9].empty()) {
    for (const auto& corr : Split(parts[9], ';')) {
      size_t gt = corr.find('>');
      if (gt == std::string::npos) {
        return Status::Corruption("bad correspondence: " + corr);
      }
      m.correspondences_[corr.substr(0, gt)] = corr.substr(gt + 1);
    }
  }
  return m;
}

}  // namespace gridvine
