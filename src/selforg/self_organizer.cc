#include "selforg/self_organizer.h"

#include <algorithm>

#include "common/logging.h"
#include "selforg/connectivity.h"

namespace gridvine {

SelfOrganizer::SelfOrganizer(GridVineNetwork* net, Options options)
    : net_(net), options_(options), rng_(options.seed) {}

void SelfOrganizer::RegisterSchemaOwner(const std::string& schema,
                                        size_t peer_idx) {
  owners_[schema] = peer_idx;
}

size_t SelfOrganizer::OwnerOf(const std::string& schema) const {
  auto it = owners_.find(schema);
  return it == owners_.end() ? 0 : it->second;
}

MappingGraph SelfOrganizer::BuildGraphView() {
  MappingGraph graph;
  for (const auto& [schema, owner] : owners_) {
    graph.AddSchema(schema);
    auto mappings = net_->FetchMappingsFor(owner, schema);
    if (!mappings.ok()) continue;
    for (const auto& m : *mappings) graph.AddMapping(m);
  }
  return graph;
}

Status SelfOrganizer::PublishAllDegrees() {
  MappingGraph graph = BuildGraphView();
  for (const auto& [schema, owner] : owners_) {
    GV_RETURN_NOT_OK(net_->PublishDegree(owner, options_.domain, schema,
                                         graph.InDegree(schema),
                                         graph.OutDegree(schema)));
  }
  return Status::OK();
}

Result<double> SelfOrganizer::ComputeIndicator() {
  size_t reader = owners_.empty() ? 0 : owners_.begin()->second;
  auto records = net_->FetchDomainDegrees(reader, options_.domain);
  if (!records.ok()) return records.status();
  if (records->empty()) {
    return Status::NotFound("connectivity registry empty for domain " +
                            options_.domain);
  }
  std::vector<std::pair<int, int>> degrees;
  degrees.reserve(records->size());
  for (const auto& rec : *records) {
    degrees.emplace_back(rec.in_degree, rec.out_degree);
  }
  return ConnectivityIndicator(degrees);
}

AttributeMatcher::ValueSets SelfOrganizer::SampleValueSets(
    const Schema& schema) {
  AttributeMatcher::ValueSets sets;
  size_t issuer = OwnerOf(schema.name());
  for (const auto& attr : schema.AttributeUris()) {
    TriplePatternQuery q(
        "o", TriplePattern(Term::Var("s"), Term::Uri(attr), Term::Var("o")));
    auto res = net_->SearchFor(issuer, q);
    if (!res.status.ok()) continue;
    std::set<std::string>& values = sets[attr];
    for (const auto& item : res.items) {
      if (int(values.size()) >= options_.value_sample_limit) break;
      values.insert(item.value.value());
    }
  }
  return sets;
}

std::set<std::string> SelfOrganizer::SampleSubjects(const Schema& schema) {
  std::set<std::string> subjects;
  size_t issuer = OwnerOf(schema.name());
  for (const auto& attr : schema.AttributeUris()) {
    TriplePatternQuery q(
        "s", TriplePattern(Term::Var("s"), Term::Uri(attr), Term::Var("o")));
    auto res = net_->SearchFor(issuer, q);
    if (!res.status.ok()) continue;
    for (const auto& item : res.items) {
      if (int(subjects.size()) >= options_.value_sample_limit) break;
      subjects.insert(item.value.value());
    }
  }
  return subjects;
}

std::vector<std::pair<std::string, std::string>>
SelfOrganizer::SelectCandidatePairs(const MappingGraph& graph, int count) {
  // Instance evidence: schemas sharing subject references are describing the
  // same entities (the paper's "shared references to the same protein
  // sequence"), making them prime mapping candidates.
  std::map<std::string, std::set<std::string>> subjects;
  std::map<std::string, Schema> schemas;
  for (const auto& [name, owner] : owners_) {
    auto schema = net_->FetchSchema(owner, name);
    if (!schema.ok()) continue;
    schemas[name] = *schema;
    subjects[name] = SampleSubjects(*schema);
  }

  struct Candidate {
    std::string a, b;
    size_t shared;
  };
  std::vector<Candidate> candidates;
  for (auto ia = schemas.begin(); ia != schemas.end(); ++ia) {
    for (auto ib = std::next(ia); ib != schemas.end(); ++ib) {
      const std::string& a = ia->first;
      const std::string& b = ib->first;
      // Skip pairs already linked by an active mapping in either direction.
      bool linked = false;
      for (const auto& m : graph.MappingsFrom(a)) {
        if (m.target_schema() == b) linked = true;
      }
      for (const auto& m : graph.MappingsFrom(b)) {
        if (m.target_schema() == a) linked = true;
      }
      if (linked) continue;
      size_t shared = 0;
      for (const auto& s : subjects[a]) shared += subjects[b].count(s);
      candidates.push_back(Candidate{a, b, shared});
    }
  }
  // Highest shared-reference count first; shuffle equals for tie-breaking.
  rng_.Shuffle(&candidates);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& x, const Candidate& y) {
                     return x.shared > y.shared;
                   });
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& c : candidates) {
    if (int(out.size()) >= count) break;
    out.emplace_back(c.a, c.b);
  }
  return out;
}

Result<SchemaMapping> SelfOrganizer::CreateMapping(const std::string& source,
                                                   const std::string& target) {
  auto src = net_->FetchSchema(OwnerOf(source), source);
  if (!src.ok()) return src.status();
  auto dst = net_->FetchSchema(OwnerOf(target), target);
  if (!dst.ok()) return dst.status();

  AttributeMatcher matcher(options_.matcher);
  auto correspondences = matcher.Match(*src, *dst, SampleValueSets(*src),
                                       SampleValueSets(*dst));
  if (correspondences.empty()) {
    return Status::NotFound("no attribute correspondences found between " +
                            source + " and " + target);
  }
  SchemaMapping m("auto-" + source + "-" + target + "-" +
                      std::to_string(next_mapping_seq_++),
                  source, target);
  m.set_provenance(MappingProvenance::kAutomatic);
  m.set_bidirectional(true);  // attribute alignments are symmetric evidence
  double score_sum = 0;
  for (const auto& c : correspondences) {
    GV_RETURN_NOT_OK(m.AddCorrespondence(c.source_attr_uri, c.target_attr_uri));
    score_sum += c.score;
  }
  m.set_confidence(score_sum / double(correspondences.size()));
  GV_RETURN_NOT_OK(net_->InsertMapping(OwnerOf(source), m));
  GV_CLOG("selforg", Info) << "created mapping " << m.id() << " ("
                           << correspondences.size()
                           << " correspondences, confidence "
                           << m.confidence() << ")";
  return m;
}

SelfOrganizer::RoundReport SelfOrganizer::RunRound() {
  RoundReport report;

  // Step 1+2: publish degrees, read the indicator back from the registry.
  PublishAllDegrees().ok();
  auto ci = ComputeIndicator();
  report.ci_before = ci.ok() ? *ci : 0.0;
  GV_CLOG("selforg", Debug) << "round start: ci=" << report.ci_before;

  // Step 3: create mappings while the mediation layer is under-connected.
  // ci < 0 is the paper's criterion; a schema with no mappings at all is a
  // degenerate under-connected case the indicator alone cannot flag (an
  // all-zero degree sequence gives ci = 0).
  MappingGraph pre_graph = BuildGraphView();
  bool has_isolated_schema = false;
  for (const auto& schema : pre_graph.Schemas()) {
    if (pre_graph.InDegree(schema) + pre_graph.OutDegree(schema) == 0) {
      has_isolated_schema = true;
      break;
    }
  }
  if (!ci.ok() || *ci < 0 || has_isolated_schema) {
    MappingGraph graph = std::move(pre_graph);
    for (const auto& [a, b] :
         SelectCandidatePairs(graph, options_.creations_per_round)) {
      auto created = CreateMapping(a, b);
      if (created.ok()) {
        ++report.mappings_created;
        report.created_ids.push_back(created->id());
      }
    }
  }

  // Step 4: assess automatic mappings; deprecate the bad ones.
  MappingGraph graph = BuildGraphView();
  MappingAssessor assessor(options_.assessor);
  auto assessment = assessor.Assess(graph);
  for (const auto& [id, posterior] : assessment.posterior) {
    if (posterior >= options_.deprecate_below) continue;
    auto m = graph.Get(id);
    if (!m.ok()) continue;
    SchemaMapping deprecated = *m;
    deprecated.set_deprecated(true);
    deprecated.set_confidence(posterior);
    if (net_->UpsertMapping(OwnerOf(deprecated.source_schema()), deprecated)
            .ok()) {
      ++report.mappings_deprecated;
      report.deprecated_ids.push_back(id);
      GV_CLOG("selforg", Info)
          << "deprecated mapping " << id << " (posterior " << posterior << ")";
    }
  }

  // Refresh the registry and report the post-round state.
  PublishAllDegrees().ok();
  auto ci_after = ComputeIndicator();
  report.ci_after = ci_after.ok() ? *ci_after : 0.0;
  MappingGraph final_graph = BuildGraphView();
  report.scc_fraction_after = final_graph.LargestSccFraction();
  report.active_mappings = final_graph.active_mapping_count();
  GV_CLOG("selforg", Debug) << "round end: ci=" << report.ci_after
                            << " created=" << report.mappings_created
                            << " deprecated=" << report.mappings_deprecated
                            << " active=" << report.active_mappings;
  return report;
}

}  // namespace gridvine
