#ifndef GRIDVINE_PGRID_MESSAGES_H_
#define GRIDVINE_PGRID_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/key.h"
#include "common/status.h"
#include "sim/network.h"

namespace gridvine {

/// Kinds of mutation carried by an UpdateRequest. The paper folds insertion,
/// modification and deletion into the single Update() primitive; we
/// distinguish insert/delete and express modification as delete+insert.
enum class UpdateOp { kInsert, kDelete };

/// Routed lookup: travels peer-to-peer via prefix routing until it reaches a
/// peer responsible for `key`, which answers the `origin` directly.
struct RetrieveRequest : MessageBody {
  uint64_t request_id = 0;
  Key key;
  NodeId origin = kInvalidNode;
  int hops = 0;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.retrieve");
    return t;
  }
  size_t SizeBytes() const override {
    return 24 + static_cast<size_t>(key.length()) / 8;
  }
};

/// Answer to a RetrieveRequest, sent straight back to the origin.
struct RetrieveResponse : MessageBody {
  uint64_t request_id = 0;
  Key key;
  Status status;
  std::vector<std::string> values;
  int hops = 0;
  NodeId responder = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.retrieve_resp");
    return t;
  }
  size_t SizeBytes() const override {
    size_t n = 32;
    for (const auto& v : values) n += v.size() + 4;
    return n;
  }
};

/// Routed mutation; like RetrieveRequest but carries a value and an op.
struct UpdateRequest : MessageBody {
  uint64_t request_id = 0;
  Key key;
  std::string value;
  UpdateOp op = UpdateOp::kInsert;
  NodeId origin = kInvalidNode;
  int hops = 0;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.update");
    return t;
  }
  size_t SizeBytes() const override {
    return 24 + static_cast<size_t>(key.length()) / 8 + value.size();
  }
};

/// Acknowledgement of an UpdateRequest, sent straight back to the origin.
struct UpdateAck : MessageBody {
  uint64_t request_id = 0;
  Status status;
  int hops = 0;
  NodeId responder = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.update_ack");
    return t;
  }
};

/// Wraps an application-level payload that must be delivered to the peer
/// responsible for `key` (prefix routing). Lets upper layers (the semantic
/// mediation layer) execute logic *at* the destination rather than pulling
/// raw values — e.g. evaluating a triple-pattern selection on the
/// destination's local database.
struct RoutedEnvelope : MessageBody {
  Key key;
  NodeId origin = kInvalidNode;
  int hops = 0;
  std::shared_ptr<const MessageBody> payload;

  MsgType TypeTag() const override {
    static const MsgType outer = MsgType::Intern("pgrid.routed");
    static const MsgType null_inner = MsgType::Intern("null");
    return MsgType::Composite(outer,
                              payload ? payload->TypeTag() : null_inner);
  }
  size_t SizeBytes() const override {
    return 16 + (payload ? payload->SizeBytes() : 0);
  }
};

/// Coalesces several application payloads headed to the same key region into
/// one wire message (the serving layer's cross-query batching): requests from
/// different in-flight queries accumulate during a short batching window and
/// travel as one routed envelope. The receiving peer's extension layer
/// unpacks the parts, dispatches each through its normal handler, and sends
/// the collected answers back to `reply_to` as another BatchEnvelope. Parts
/// are heterogeneous, so the tag is not a composite — per-part accounting
/// happens at the application layer.
struct BatchEnvelope : MessageBody {
  NodeId reply_to = kInvalidNode;
  std::vector<std::shared_ptr<const MessageBody>> parts;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.batch");
    return t;
  }
  size_t SizeBytes() const override {
    size_t n = 12;
    for (const auto& p : parts) n += (p ? p->SizeBytes() : 0) + 4;
    return n;
  }
};

/// Multicast of an application payload to EVERY peer whose region intersects
/// the subtree `prefix` (P-Grid's "shower" broadcast): the envelope first
/// routes toward the subtree, then splits level by level along the receiving
/// peers' paths. `min_level` marks the shallowest level the receiving peer
/// may still split at — the splitting discipline that delivers to each
/// region exactly once. Used for range queries over the order-preserving
/// key space.
struct RangeEnvelope : MessageBody {
  Key prefix;
  int min_level = 0;
  NodeId origin = kInvalidNode;
  int hops = 0;
  std::shared_ptr<const MessageBody> payload;

  MsgType TypeTag() const override {
    static const MsgType outer = MsgType::Intern("pgrid.range");
    static const MsgType null_inner = MsgType::Intern("null");
    return MsgType::Composite(outer,
                              payload ? payload->TypeTag() : null_inner);
  }
  size_t SizeBytes() const override {
    return 20 + (payload ? payload->SizeBytes() : 0);
  }
};

/// Point-to-point application payload (e.g. query answers flowing straight
/// back to the query origin).
struct DirectEnvelope : MessageBody {
  std::shared_ptr<const MessageBody> payload;

  MsgType TypeTag() const override {
    static const MsgType outer = MsgType::Intern("pgrid.direct");
    static const MsgType null_inner = MsgType::Intern("null");
    return MsgType::Composite(outer,
                              payload ? payload->TypeTag() : null_inner);
  }
  size_t SizeBytes() const override {
    return 4 + (payload ? payload->SizeBytes() : 0);
  }
};

/// Liveness/identity probe used by overlay maintenance. The response carries
/// the responder's current path so the prober can (re)classify the peer
/// against its own routing invariant.
struct PingRequest : MessageBody {
  uint64_t nonce = 0;
  NodeId origin = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.ping");
    return t;
  }
  size_t SizeBytes() const override { return 12; }
};

struct PingResponse : MessageBody {
  uint64_t nonce = 0;
  Key path;
  NodeId responder = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.pong");
    return t;
  }
  size_t SizeBytes() const override {
    return 16 + static_cast<size_t>(path.length()) / 8;
  }
};

/// Asks a peer for routing-table candidates (ref gossip); the response lists
/// the responder's references and replicas, which the requester then probes
/// before adopting.
struct RefsRequest : MessageBody {
  uint64_t nonce = 0;
  NodeId origin = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.refs_req");
    return t;
  }
  size_t SizeBytes() const override { return 12; }
};

struct RefsResponse : MessageBody {
  uint64_t nonce = 0;
  Key responder_path;
  std::vector<NodeId> candidates;
  NodeId responder = kInvalidNode;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.refs_resp");
    return t;
  }
  size_t SizeBytes() const override { return 16 + candidates.size() * 4; }
};

/// One-way replication of a mutation from a responsible peer to its replicas
/// σ(p); fire-and-forget (probabilistic consistency, as in the paper).
struct ReplicaUpdate : MessageBody {
  Key key;
  std::string value;
  UpdateOp op = UpdateOp::kInsert;

  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("pgrid.replica_update");
    return t;
  }
  size_t SizeBytes() const override {
    return 8 + static_cast<size_t>(key.length()) / 8 + value.size();
  }
};

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_MESSAGES_H_
