#include "query/planner.h"

#include <algorithm>
#include <climits>
#include <cstdint>
#include <map>
#include <numeric>
#include <set>
#include <string>

namespace gridvine {

PatternCost ClassifyPattern(const TriplePattern& pattern) {
  if (pattern.IsExactConstant(TriplePos::kSubject)) {
    return PatternCost::kExactSubject;
  }
  if (pattern.IsExactConstant(TriplePos::kObject)) {
    return PatternCost::kExactObject;
  }
  if (pattern.IsExactConstant(TriplePos::kPredicate)) {
    return PatternCost::kExactPredicate;
  }
  if (pattern.ObjectRangePrefix().has_value()) return PatternCost::kRange;
  return PatternCost::kUnroutable;
}

namespace {

/// Orders one join-connected component's patterns: cheapest first, then
/// repeatedly the cheapest pattern sharing a variable with the prefix.
/// Within a connected component some remaining pattern is always adjacent
/// to the prefix, and connected (rank <= 4) beats unconnected (rank >= 10),
/// so the chain never breaks connectivity. Ties go to the lowest original
/// index, keeping plans byte-identical across runs and platforms.
std::vector<size_t> OrderComponent(const std::vector<TriplePattern>& patterns,
                                   std::vector<size_t> remaining) {
  std::vector<size_t> order;
  std::set<std::string> bound_vars;
  while (!remaining.empty()) {
    size_t best_slot = 0;
    int best_rank = INT_MAX;
    for (size_t slot = 0; slot < remaining.size(); ++slot) {
      const TriplePattern& p = patterns[remaining[slot]];
      bool connected = order.empty();
      for (const auto& var : p.Variables()) {
        if (bound_vars.count(var)) connected = true;
      }
      int rank = int(ClassifyPattern(p)) + (connected ? 0 : 10);
      if (rank < best_rank) {
        best_rank = rank;
        best_slot = slot;
      }
    }
    size_t chosen = remaining[best_slot];
    remaining.erase(remaining.begin() + ptrdiff_t(best_slot));
    order.push_back(chosen);
    for (const auto& var : patterns[chosen].Variables()) {
      bound_vars.insert(var);
    }
  }
  return order;
}

/// The estimate for pattern `i`, or nullptr when absent/unknown.
const PatternEstimate* EstOf(const PlanOptions& options, size_t i) {
  if (i < options.estimates.size() && options.estimates[i].known) {
    return &options.estimates[i];
  }
  return nullptr;
}

/// Distinct values the running join can present as probe keys into `p`:
/// the largest distinct-count sketch among the pattern's already-bound
/// variable positions. 1 when the pattern shares no bound variable (cross
/// product — no key reduction).
double JoinKeyDistinct(const TriplePattern& p, const PatternEstimate& e,
                       const std::set<std::string>& bound_vars) {
  double d = 1.0;
  if (p.subject().IsVariable() && bound_vars.count(p.subject().value())) {
    d = std::max(d, e.distinct_subjects);
  }
  if (p.object().IsVariable() && bound_vars.count(p.object().value())) {
    d = std::max(d, e.distinct_objects);
  }
  return std::max(1.0, d);
}

struct CostChain {
  std::vector<size_t> order;
  std::vector<PlanStep> steps;
  std::vector<double> est_cards;
};

/// Cost-based chain ordering, shared by PlanPhysical (have_prefix = false:
/// the chain starts with a RemoteScan lead) and PlanGroupSuffix
/// (have_prefix = true: every appended pattern extends an existing binding
/// set). At each step the connected candidate with the smallest estimated
/// resulting cardinality wins; candidates without an estimate rank after
/// estimated ones by the greedy (PatternCost, index) key, so a stats
/// blackout degrades to exactly the greedy choice among them.
CostChain OrderComponentCost(const std::vector<TriplePattern>& patterns,
                             std::vector<size_t> remaining,
                             std::set<std::string> bound_vars,
                             double prefix_card, bool have_prefix,
                             const PlanOptions& options) {
  CostChain out;
  // Running cardinality estimate; < 0 while unknown (no estimated pattern
  // consumed yet, or an unestimated pattern broke the chain).
  double cur = have_prefix ? prefix_card : -1.0;
  bool first = !have_prefix;
  while (!remaining.empty()) {
    // The chain's first pattern resolves as a full RemoteScan, which an
    // unroutable pattern cannot serve — so the lead pick prefers routable
    // candidates outright, whatever their estimates say.
    const bool lead_pick = first && out.order.empty();
    size_t best_slot = 0;
    bool best_connected = false;
    bool best_routable = false;
    bool best_known = false;
    double best_joined = 0;
    int best_cls = INT_MAX;
    size_t best_idx = SIZE_MAX;
    bool have_best = false;
    for (size_t slot = 0; slot < remaining.size(); ++slot) {
      const size_t idx = remaining[slot];
      const TriplePattern& p = patterns[idx];
      bool connected = lead_pick;
      for (const auto& var : p.Variables()) {
        if (bound_vars.count(var)) connected = true;
      }
      const PatternEstimate* e = EstOf(options, idx);
      bool known = e != nullptr;
      double joined = 0;
      if (known) {
        joined = e->rows;
        if (!lead_pick && cur >= 0) {
          joined = cur * e->rows / JoinKeyDistinct(p, *e, bound_vars);
        }
      }
      int cls = int(ClassifyPattern(p));
      bool routable = cls != int(PatternCost::kUnroutable);
      auto better = [&] {
        if (connected != best_connected) return connected;
        if (lead_pick && routable != best_routable) return routable;
        if (known != best_known) return known;
        if (known && best_known && joined != best_joined) {
          return joined < best_joined;
        }
        if (cls != best_cls) return cls < best_cls;
        return idx < best_idx;
      };
      if (!have_best || better()) {
        have_best = true;
        best_slot = slot;
        best_connected = connected;
        best_routable = routable;
        best_known = known;
        best_joined = joined;
        best_cls = cls;
        best_idx = idx;
      }
    }
    const size_t chosen = remaining[best_slot];
    remaining.erase(remaining.begin() + ptrdiff_t(best_slot));
    const TriplePattern& p = patterns[chosen];
    const PatternEstimate* e = EstOf(options, chosen);

    const bool lead = first && out.order.empty();
    if (lead) {
      out.steps.push_back({OpKind::kRemoteScan, chosen});
      out.steps.push_back({OpKind::kLocalJoin});
    } else {
      // Per-edge strategy: ship the running join's keys out and matches
      // back (bind) vs ship the full extent (collect). An unroutable
      // pattern can only be resolved with bound constants, so it always
      // binds; without estimates the configured default applies.
      bool can_collect = ClassifyPattern(p) != PatternCost::kUnroutable;
      bool bind = options.bind_join;
      if (bind && can_collect && e != nullptr && cur >= 0) {
        double probes = std::min(cur, JoinKeyDistinct(p, *e, bound_vars));
        double joined = cur * e->rows / JoinKeyDistinct(p, *e, bound_vars);
        bind = probes + joined <= e->rows;
      }
      if (!can_collect) bind = true;
      if (bind) {
        out.steps.push_back({OpKind::kBindJoin, chosen});
      } else {
        out.steps.push_back({OpKind::kRemoteScan, chosen});
        out.steps.push_back({OpKind::kLocalJoin});
      }
    }

    if (e != nullptr) {
      if (lead || cur < 0) {
        cur = e->rows;
      } else {
        cur = cur * e->rows / JoinKeyDistinct(p, *e, bound_vars);
      }
    } else {
      cur = -1.0;  // estimate chain broken
    }
    out.order.push_back(chosen);
    out.est_cards.push_back(cur >= 0 ? cur : 0.0);
    for (const auto& var : p.Variables()) bound_vars.insert(var);
  }
  return out;
}

}  // namespace

PhysicalPlan PlanPhysical(const ConjunctiveQuery& query,
                          const PlanOptions& options) {
  const auto& patterns = query.patterns();
  const size_t n = patterns.size();

  // Union-find over shared variables: patterns sharing a variable join into
  // one component; a fully-constant pattern stays alone.
  std::vector<size_t> parent(n);
  std::iota(parent.begin(), parent.end(), size_t{0});
  auto find = [&parent](size_t i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  };
  std::map<std::string, size_t> var_owner;
  for (size_t i = 0; i < n; ++i) {
    for (const auto& var : patterns[i].Variables()) {
      auto [it, fresh] = var_owner.emplace(var, i);
      if (!fresh) parent[find(i)] = find(it->second);
    }
  }

  std::map<size_t, std::vector<size_t>> components;  // root -> members
  for (size_t i = 0; i < n; ++i) components[find(i)].push_back(i);

  struct Ranked {
    std::vector<size_t> order;
    /// Non-empty only on the cost-based path: the chain's operator steps
    /// and running cardinality estimates, computed alongside the order.
    std::vector<PlanStep> steps;
    std::vector<double> est_cards;
    int lead_cost;
    size_t lead_index;
  };
  const bool cost_based = !options.estimates.empty();
  std::vector<Ranked> ranked;
  for (auto& [root, members] : components) {
    Ranked r;
    const bool constant_only =
        members.size() == 1 && patterns[members[0]].Variables().empty();
    if (cost_based && !constant_only) {
      CostChain chain = OrderComponentCost(patterns, std::move(members), {},
                                           0, /*have_prefix=*/false, options);
      r.order = std::move(chain.order);
      r.steps = std::move(chain.steps);
      r.est_cards = std::move(chain.est_cards);
    } else {
      r.order = OrderComponent(patterns, std::move(members));
    }
    r.lead_cost = int(ClassifyPattern(patterns[r.order[0]]));
    r.lead_index = r.order[0];
    ranked.push_back(std::move(r));
  }
  // Groups run cheapest-lead first — the order the serial planner would
  // reach them in, so Order() matches the legacy contract.
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.lead_cost != b.lead_cost) return a.lead_cost < b.lead_cost;
    return a.lead_index < b.lead_index;
  });

  PhysicalPlan plan;
  for (Ranked& r : ranked) {
    PlanGroup g;
    g.patterns = std::move(r.order);
    g.est_cards = std::move(r.est_cards);
    const size_t lead = g.patterns[0];
    if (g.patterns.size() == 1 && patterns[lead].Variables().empty()) {
      g.steps.push_back({OpKind::kExistenceCheck, lead});
    } else if (!r.steps.empty()) {
      g.steps = std::move(r.steps);
    } else {
      g.steps.push_back({OpKind::kRemoteScan, lead});
      g.steps.push_back({OpKind::kLocalJoin});
      for (size_t k = 1; k < g.patterns.size(); ++k) {
        if (options.bind_join) {
          g.steps.push_back({OpKind::kBindJoin, g.patterns[k]});
        } else {
          g.steps.push_back({OpKind::kRemoteScan, g.patterns[k]});
          g.steps.push_back({OpKind::kLocalJoin});
        }
      }
    }
    plan.groups.push_back(std::move(g));
  }
  for (size_t gi = 1; gi < plan.groups.size(); ++gi) {
    plan.tail.push_back({OpKind::kLocalJoin});
  }
  plan.tail.push_back({OpKind::kProject});
  plan.tail.push_back({OpKind::kDedup});
  return plan;
}

std::vector<size_t> PlanConjunctive(const ConjunctiveQuery& query) {
  return PlanPhysical(query).Order();
}

GroupSuffix PlanGroupSuffix(const ConjunctiveQuery& query,
                            const std::vector<size_t>& consumed,
                            const std::vector<size_t>& remaining,
                            double prefix_card, const PlanOptions& options) {
  std::set<std::string> bound_vars;
  for (size_t idx : consumed) {
    for (const auto& var : query.patterns()[idx].Variables()) {
      bound_vars.insert(var);
    }
  }
  CostChain chain =
      OrderComponentCost(query.patterns(), remaining, std::move(bound_vars),
                         prefix_card, /*have_prefix=*/true, options);
  GroupSuffix suffix;
  suffix.patterns = std::move(chain.order);
  suffix.steps = std::move(chain.steps);
  suffix.est_cards = std::move(chain.est_cards);
  return suffix;
}

}  // namespace gridvine
