#ifndef GRIDVINE_SELFORG_ATTRIBUTE_MATCHER_H_
#define GRIDVINE_SELFORG_ATTRIBUTE_MATCHER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "selforg/embedding.h"

namespace gridvine {

/// Induces attribute correspondences between two schemas using the paper's
/// Section 4 recipe: "a combination of lexicographical measures and set
/// distance measures between the predicates defined in both schemas".
///
///  * Lexical: max of normalized edit similarity and trigram (Dice)
///    similarity of the attribute *local* names, case-folded and with
///    '_'/'-' separators removed.
///  * Set distance: Jaccard similarity of the sets of object values observed
///    under the two predicates (shared instance references make these sets
///    overlap when the attributes mean the same thing).
///  * Optional embedding channel: cosine similarity of precomputed
///    hashed-trigram vectors (embedding.h), off by default
///    (embedding_weight == 0). Supply tables via SetEmbeddings; pairs
///    missing a vector fall back to the other channels, renormalized.
///
/// The final score is a weighted blend; pairs are accepted greedily
/// best-first, one-to-one, above a threshold.
class AttributeMatcher {
 public:
  struct Options {
    double lexical_weight = 0.5;
    double value_weight = 0.5;
    /// Minimum blended score for a correspondence to be emitted.
    double threshold = 0.45;
    /// Weight of the precomputed-embedding cosine channel; 0 disables it.
    /// (Declared after threshold so positional Options initializers predate
    /// the channel keep their meaning.)
    double embedding_weight = 0.0;
  };

  /// Default-configured matcher (definition below the class: a nested
  /// Options cannot appear as an in-class default argument).
  AttributeMatcher();
  explicit AttributeMatcher(Options options) : options_(options) {}

  /// Observed object values per attribute URI (may be empty: the matcher
  /// then relies on the lexical component alone, renormalized).
  using ValueSets = std::map<std::string, std::set<std::string>>;

  struct Correspondence {
    std::string source_attr_uri;
    std::string target_attr_uri;
    double score = 0;
  };

  /// Scores one attribute pair (exposed for tests and diagnostics).
  double Score(const std::string& source_attr_uri,
               const std::string& target_attr_uri,
               const ValueSets& source_values,
               const ValueSets& target_values) const;

  /// Produces one-to-one correspondences from `source` to `target`.
  std::vector<Correspondence> Match(const Schema& source, const Schema& target,
                                    const ValueSets& source_values,
                                    const ValueSets& target_values) const;

  /// Attaches precomputed embedding tables (attribute URI -> vector) for
  /// the cosine channel. Pass nullptr to detach; tables must outlive the
  /// matcher's use of them. No effect while embedding_weight == 0.
  void SetEmbeddings(const EmbeddingTable* source, const EmbeddingTable* target) {
    source_embeddings_ = source;
    target_embeddings_ = target;
  }

  const Options& options() const { return options_; }

 private:
  Options options_;
  const EmbeddingTable* source_embeddings_ = nullptr;
  const EmbeddingTable* target_embeddings_ = nullptr;
};

inline AttributeMatcher::AttributeMatcher() : options_(Options()) {}

}  // namespace gridvine

#endif  // GRIDVINE_SELFORG_ATTRIBUTE_MATCHER_H_
