#include "pgrid/pgrid_builder.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/hash.h"
#include "pgrid/load_stats.h"
#include "pgrid/pgrid_peer.h"

namespace gridvine {
namespace {

struct Overlay {
  explicit Overlay(size_t n, int key_depth = 10, uint64_t seed = 1)
      : net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(seed)) {
    PGridPeer::Options opts;
    opts.key_depth = key_depth;
    for (size_t i = 0; i < n; ++i) {
      owned.push_back(
          std::make_unique<PGridPeer>(&sim, &net, Rng(seed * 977 + i), opts));
      peers.push_back(owned.back().get());
    }
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
};

TEST(PGridBuilderTest, BalancedCoversAllPaths) {
  Overlay o(8);
  Rng rng(3);
  PGridBuilder::BuildBalanced(o.peers, &rng);
  std::set<std::string> paths;
  for (auto* p : o.peers) {
    EXPECT_EQ(p->path().length(), 3);
    paths.insert(p->path().bits());
  }
  EXPECT_EQ(paths.size(), 8u);
}

TEST(PGridBuilderTest, NonPowerOfTwoCreatesReplicas) {
  Overlay o(10);  // depth 3, 8 leaves, 2 peers doubled up
  Rng rng(3);
  PGridBuilder::BuildBalanced(o.peers, &rng);
  std::set<std::string> paths;
  size_t replicas = 0;
  for (auto* p : o.peers) {
    paths.insert(p->path().bits());
    replicas += p->routing()->replicas().size();
  }
  EXPECT_EQ(paths.size(), 8u);
  EXPECT_EQ(replicas, 4u);  // two replica pairs, links both ways
}

TEST(PGridBuilderTest, RoutingRefsRespectInvariant) {
  Overlay o(16);
  Rng rng(3);
  PGridBuilder::BuildBalanced(o.peers, &rng);
  for (auto* p : o.peers) {
    for (int level = 0; level < p->path().length(); ++level) {
      for (NodeId ref : p->routing()->RefsAt(level)) {
        const Key& other = o.peers[ref]->path();
        // Ref must live in the complementary subtree at `level`.
        EXPECT_EQ(other.CommonPrefixLength(p->path()), level);
        EXPECT_NE(other.bit(level), p->path().bit(level));
      }
      EXPECT_GE(p->routing()->RefsAt(level).size(), 1u);
    }
  }
}

TEST(PGridBuilderTest, EveryKeyRoutableFromEveryPeer) {
  Overlay o(32);
  Rng rng(9);
  PGridBuilder::BuildBalanced(o.peers, &rng);
  // Walk greedy routing by hand for every (peer, key) pair.
  Rng walk_rng(5);
  for (auto* origin : o.peers) {
    for (uint64_t k = 0; k < 32; ++k) {
      Key key = Key::FromUint(k, 5);
      PGridPeer* cur = origin;
      int hops = 0;
      while (!cur->IsResponsibleFor(key)) {
        auto next = cur->routing()->NextHop(key, &walk_rng);
        ASSERT_TRUE(next.has_value())
            << "dead end from " << cur->path() << " toward " << key;
        cur = o.peers[*next];
        ASSERT_LE(++hops, 5) << "too many hops";
      }
      EXPECT_LE(hops, 5);
    }
  }
}

TEST(PGridBuilderTest, AdaptiveBalancesSkewedLoad) {
  // Numeric strings occupy only the digit band of the order-preserving
  // alphabet and are length-skewed, concentrating keys in a narrow region.
  OrderPreservingHash h(16);
  std::vector<Key> sample;
  for (int i = 0; i < 2000; ++i) {
    sample.push_back(h(std::to_string(i)));
  }
  Overlay balanced(32, /*key_depth=*/16), adaptive(32, /*key_depth=*/16);
  Rng rng1(3), rng2(3);
  PGridBuilder::BuildBalanced(balanced.peers, &rng1);
  PGridBuilder::BuildAdaptive(adaptive.peers, sample, &rng2);

  auto assign = [&](std::vector<PGridPeer*>& peers) {
    for (const Key& k : sample) {
      for (auto* p : peers) {
        if (p->path().IsPrefixOf(k)) {
          p->InsertLocal(k, "v");
          break;
        }
      }
    }
  };
  assign(balanced.peers);
  assign(adaptive.peers);
  LoadStats sb = ComputeLoadStats(balanced.peers);
  LoadStats sa = ComputeLoadStats(adaptive.peers);
  // The adaptive trie must spread the skewed keys far better.
  EXPECT_LT(sa.gini, sb.gini);
  EXPECT_LT(sa.max_over_mean, sb.max_over_mean);
}

TEST(PGridBuilderTest, AdaptivePathsCoverKeySpace) {
  OrderPreservingHash h(10);
  std::vector<Key> sample;
  for (int i = 0; i < 500; ++i) {
    sample.push_back(h("x" + std::to_string(i * i)));
  }
  Overlay o(20);
  Rng rng(4);
  PGridBuilder::BuildAdaptive(o.peers, sample, &rng);
  // Coverage: every sample key must have exactly one responsible leaf path
  // among distinct paths (plus replicas sharing it).
  for (const Key& k : sample) {
    std::set<std::string> responsible;
    for (auto* p : o.peers) {
      if (p->path().IsPrefixOf(k)) responsible.insert(p->path().bits());
    }
    EXPECT_EQ(responsible.size(), 1u) << "key " << k;
  }
}

TEST(PGridBuilderTest, AdaptiveWithEmptySampleFallsBack) {
  Overlay o(8);
  Rng rng(4);
  PGridBuilder::BuildAdaptive(o.peers, {}, &rng);
  for (auto* p : o.peers) EXPECT_EQ(p->path().length(), 3);
}

TEST(PGridBuilderTest, SinglePeerOwnsEverything) {
  Overlay o(1);
  Rng rng(4);
  PGridBuilder::BuildBalanced(o.peers, &rng);
  EXPECT_EQ(o.peers[0]->path().length(), 0);
  EXPECT_TRUE(o.peers[0]->IsResponsibleFor(Key::FromUint(5, 8)));
}

TEST(PGridBuilderTest, RebuildAfterBuildDropsStaleLinks) {
  // Regression: rebuilding an already-wired overlay with different paths
  // must not leave refs from the old topology behind (they violate the
  // complementary-subtree invariant and cause routing loops).
  OrderPreservingHash h(10);
  std::vector<Key> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(h(std::to_string(i * 37)));
  Overlay o(24, /*key_depth=*/10);
  Rng rng(5);
  PGridBuilder::BuildBalanced(o.peers, &rng);
  PGridBuilder::BuildAdaptive(o.peers, sample, &rng);
  for (auto* p : o.peers) {
    for (int level = 0; level < p->path().length(); ++level) {
      for (NodeId ref : p->routing()->RefsAt(level)) {
        const Key& other = o.peers[ref]->path();
        EXPECT_EQ(other.CommonPrefixLength(p->path()), level)
            << p->path() << " -> " << other << " at level " << level;
        EXPECT_NE(other.bit(level), p->path().bit(level));
      }
    }
    for (NodeId rep : p->routing()->replicas()) {
      EXPECT_EQ(o.peers[rep]->path(), p->path());
    }
  }
  // Every sampled key must be routable from every 4th peer.
  Rng walk_rng(9);
  for (size_t i = 0; i < sample.size(); i += 25) {
    PGridPeer* cur = o.peers[i % o.peers.size()];
    int hops = 0;
    while (!cur->IsResponsibleFor(sample[i])) {
      auto next = cur->routing()->NextHop(sample[i], &walk_rng);
      ASSERT_TRUE(next.has_value());
      cur = o.peers[*next];
      ASSERT_LE(++hops, 10);
    }
  }
}

TEST(LoadStatsTest, UniformLoadHasZeroGini) {
  Overlay o(4);
  for (auto* p : o.peers) {
    p->SetPath(Key());
    p->InsertLocal(UniformHash("k" + std::to_string(p->id()), 8), "v");
  }
  LoadStats s = ComputeLoadStats(o.peers);
  EXPECT_EQ(s.total, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_NEAR(s.gini, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.max_over_mean, 1.0);
}

TEST(LoadStatsTest, SkewedLoadHasPositiveGini) {
  Overlay o(4);
  for (int i = 0; i < 30; ++i) {
    o.peers[0]->InsertLocal(Key::FromUint(uint64_t(i), 8), "v");
  }
  o.peers[1]->InsertLocal(Key::FromUint(200, 8), "v");
  LoadStats s = ComputeLoadStats(o.peers);
  EXPECT_GT(s.gini, 0.5);
  EXPECT_GT(s.max_over_mean, 3.0);
}

}  // namespace
}  // namespace gridvine
