#include "sim/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/fault_plan.h"

namespace gridvine {
namespace {

struct TestMsg : MessageBody {
  explicit TestMsg(int v) : value(v) {}
  int value;
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("test");
    return t;
  }
  size_t SizeBytes() const override { return 10; }
};

class Recorder : public NetworkNode {
 public:
  void OnMessage(NodeId from, std::shared_ptr<const MessageBody> body) override {
    received.push_back({from, dynamic_cast<const TestMsg*>(body.get())->value});
  }
  std::vector<std::pair<NodeId, int>> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : net_(&sim_, std::make_unique<ConstantLatency>(0.1), Rng(7)) {}

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversAfterLatency) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.Send(ida, idb, std::make_shared<TestMsg>(42));
  EXPECT_TRUE(b.received.empty());
  sim_.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, ida);
  EXPECT_EQ(b.received[0].second, 42);
  EXPECT_DOUBLE_EQ(sim_.Now(), 0.1);
}

TEST_F(NetworkTest, SelfSendWorks) {
  Recorder a;
  NodeId ida = net_.AddNode(&a);
  net_.Send(ida, ida, std::make_shared<TestMsg>(1));
  sim_.Run();
  EXPECT_EQ(a.received.size(), 1u);
}

TEST_F(NetworkTest, DropsToDeadNode) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.SetAlive(idb, false);
  net_.Send(ida, idb, std::make_shared<TestMsg>(1));
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, DeadSenderSendsNothing) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.SetAlive(ida, false);
  net_.Send(ida, idb, std::make_shared<TestMsg>(1));
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetworkTest, DropsIfNodeDiesInFlight) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.Send(ida, idb, std::make_shared<TestMsg>(1));
  // Kill the destination before the 0.1s delivery fires.
  sim_.Schedule(0.05, [&] { net_.SetAlive(idb, false); });
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, RevivedNodeReceivesAgain) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.SetAlive(idb, false);
  net_.SetAlive(idb, true);
  net_.Send(ida, idb, std::make_shared<TestMsg>(5));
  sim_.Run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetworkTest, StatsAccounting) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  net_.Send(ida, idb, std::make_shared<TestMsg>(1));
  net_.Send(ida, idb, std::make_shared<TestMsg>(2));
  sim_.Run();
  EXPECT_EQ(net_.stats().messages_sent, 2u);
  EXPECT_EQ(net_.stats().messages_delivered, 2u);
  EXPECT_EQ(net_.stats().bytes_sent, 20u);
  EXPECT_EQ(net_.stats().MessagesForType("test"), 2u);
  EXPECT_EQ(net_.stats().BytesForType("test"), 20u);
  EXPECT_EQ(net_.stats().MessagesByTypeName().at("test"), 2u);
  const_cast<Network&>(net_).ResetStats();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
}

// Pins the drop-accounting contract documented on NetworkStats: the *_sent
// counters (total, bytes, per-type) are recorded at Send() time and include
// every message later dropped, while delivered + dropped partitions sent.
TEST_F(NetworkTest, SentCountersIncludeDropsOfEveryKind) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);

  net_.Send(ida, idb, std::make_shared<TestMsg>(1));  // delivered
  sim_.Run();
  net_.SetAlive(idb, false);
  net_.Send(ida, idb, std::make_shared<TestMsg>(2));  // dropped at send
  sim_.Run();
  net_.SetAlive(idb, true);
  net_.Send(ida, idb, std::make_shared<TestMsg>(3));  // dropped in flight
  net_.SetAlive(idb, false);
  sim_.Run();

  const NetworkStats& s = net_.stats();
  EXPECT_EQ(s.messages_sent, 3u);
  EXPECT_EQ(s.messages_delivered, 1u);
  EXPECT_EQ(s.messages_dropped, 2u);
  EXPECT_EQ(s.messages_sent, s.messages_delivered + s.messages_dropped);
  // Per-type and byte counters follow messages_sent, not messages_delivered.
  EXPECT_EQ(s.MessagesForType("test"), 3u);
  EXPECT_EQ(s.BytesForType("test"), 30u);
  EXPECT_EQ(s.bytes_sent, 30u);
}

TEST_F(NetworkTest, TypeAccessorsForUnknownTypesReturnZero) {
  EXPECT_EQ(net_.stats().MessagesForType("no.such.type"), 0u);
  EXPECT_EQ(net_.stats().BytesForType("no.such.type"), 0u);
  EXPECT_TRUE(net_.stats().MessagesByTypeName().empty());
}

TEST(NetworkLossTest, LossyNetworkDropsSomeMessages) {
  Simulator sim;
  Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(3),
              /*loss_probability=*/0.5);
  Recorder a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  for (int i = 0; i < 200; ++i) net.Send(ida, idb, std::make_shared<TestMsg>(i));
  sim.Run();
  EXPECT_GT(b.received.size(), 50u);
  EXPECT_LT(b.received.size(), 150u);
}

TEST(LatencyModelTest, UniformWithinBounds) {
  Rng rng(11);
  UniformLatency lat(0.2, 0.4);
  for (int i = 0; i < 100; ++i) {
    double s = lat.Sample(&rng);
    EXPECT_GE(s, 0.2);
    EXPECT_LT(s, 0.4);
  }
}

TEST(LatencyModelTest, WanLatencyAboveBase) {
  Rng rng(11);
  WanLatency lat(0.015);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    double s = lat.Sample(&rng);
    EXPECT_GT(s, 0.015);
    sum += s;
  }
  // Mean one-way delay lands in a plausible WAN band.
  EXPECT_GT(sum / 1000, 0.03);
  EXPECT_LT(sum / 1000, 0.3);
}

// ChurnModel itself is covered in tests/churn_test.cc; the fault-plan tests
// below exercise the injection hooks Network consults on every Send().

TEST_F(NetworkTest, PartitionDropsBothWaysWithAttribution) {
  Recorder a, b, c;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);
  NodeId idc = net_.AddNode(&c);

  auto plan = std::make_unique<FaultPlan>();
  FaultPlan::Partition part;
  part.start = 0.0;
  part.end = 10.0;
  part.group_a = {ida};
  part.group_b = {idb};
  plan->AddPartition(part);
  net_.SetFaultPlan(std::move(plan));

  net_.Send(ida, idb, std::make_shared<TestMsg>(1));  // dropped a→b
  net_.Send(idb, ida, std::make_shared<TestMsg>(2));  // dropped b→a
  net_.Send(ida, idc, std::make_shared<TestMsg>(3));  // c unaffected
  sim_.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(net_.stats().drops_partition, 2u);
  EXPECT_EQ(net_.stats().messages_dropped, 2u);
  EXPECT_EQ(net_.stats().DropsForType("test"), 2u);

  // Outside the window the same pair communicates again.
  sim_.Schedule(11.0, [&] { net_.Send(ida, idb, std::make_shared<TestMsg>(4)); });
  sim_.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, 4);
}

TEST_F(NetworkTest, LossBurstDropsInsideTheWindowOnly) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);

  auto plan = std::make_unique<FaultPlan>();
  FaultPlan::LossBurst burst;
  burst.start = 0.0;
  burst.end = 5.0;
  burst.probability = 1.0;  // certain drop inside the window
  plan->AddLossBurst(burst);
  net_.SetFaultPlan(std::move(plan));

  for (int i = 0; i < 10; ++i) {
    net_.Send(ida, idb, std::make_shared<TestMsg>(i));  // all inside
  }
  sim_.Schedule(6.0, [&] { net_.Send(ida, idb, std::make_shared<TestMsg>(99)); });
  sim_.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, 99);
  EXPECT_EQ(net_.stats().drops_burst, 10u);
  EXPECT_EQ(net_.stats().messages_dropped, 10u);
}

TEST_F(NetworkTest, DuplicationDeliversTwiceAndKeepsConservation) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);

  auto plan = std::make_unique<FaultPlan>();
  plan->set_duplicate_probability(1.0);
  net_.SetFaultPlan(std::move(plan));

  for (int i = 0; i < 5; ++i) {
    net_.Send(ida, idb, std::make_shared<TestMsg>(i));
  }
  sim_.Run();
  const NetworkStats& s = net_.stats();
  EXPECT_EQ(b.received.size(), 10u);
  EXPECT_EQ(s.messages_sent, 5u);
  EXPECT_EQ(s.messages_duplicated, 5u);
  EXPECT_EQ(s.messages_sent + s.messages_duplicated,
            s.messages_delivered + s.messages_dropped);
}

TEST_F(NetworkTest, DuplicateCopyCanStillDieInFlight) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);

  auto plan = std::make_unique<FaultPlan>();
  plan->set_duplicate_probability(1.0);
  net_.SetFaultPlan(std::move(plan));

  net_.Send(ida, idb, std::make_shared<TestMsg>(1));
  // Kill the destination before either copy's delivery fires: both copies
  // drop in flight, attributed to the endpoint.
  sim_.Schedule(0.01, [&] { net_.SetAlive(idb, false); });
  sim_.Run();
  const NetworkStats& s = net_.stats();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(s.messages_duplicated, 1u);
  EXPECT_EQ(s.drops_endpoint, s.messages_dropped);
  EXPECT_EQ(s.messages_sent + s.messages_duplicated,
            s.messages_delivered + s.messages_dropped);
}

TEST_F(NetworkTest, LatencySpikeDelaysDeliveriesInsideTheWindow) {
  Recorder a, b;
  NodeId ida = net_.AddNode(&a);
  NodeId idb = net_.AddNode(&b);

  auto plan = std::make_unique<FaultPlan>();
  FaultPlan::LatencySpike spike;
  spike.start = 0.0;
  spike.end = 1.0;
  spike.extra = 0.5;
  spike.extra_mean_tail = 0;  // deterministic extra
  plan->AddLatencySpike(spike);
  net_.SetFaultPlan(std::move(plan));

  net_.Send(ida, idb, std::make_shared<TestMsg>(1));
  sim_.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_DOUBLE_EQ(sim_.Now(), 0.6);  // 0.1 base + 0.5 spike

  // A send after the window pays only base latency again.
  sim_.ScheduleAt(2.0, [&] { net_.Send(ida, idb, std::make_shared<TestMsg>(2)); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(sim_.Now(), 2.1);
}

// The hot-path contract on FaultPlan: an installed-but-idle plan draws
// nothing from the network Rng, so a seeded lossy run is unchanged by it.
TEST(FaultPlanTest, IdlePlanDoesNotPerturbASeededRun) {
  auto run = [](bool with_plan) {
    Simulator sim;
    Network net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(3),
                /*loss_probability=*/0.5);
    if (with_plan) {
      auto plan = std::make_unique<FaultPlan>();
      FaultPlan::LossBurst burst;  // window far in the future: never covers
      burst.start = 1e6;
      burst.end = 1e6 + 1;
      plan->AddLossBurst(burst);
      net.SetFaultPlan(std::move(plan));
    }
    Recorder a, b;
    NodeId ida = net.AddNode(&a);
    NodeId idb = net.AddNode(&b);
    for (int i = 0; i < 200; ++i) {
      net.Send(ida, idb, std::make_shared<TestMsg>(i));
    }
    sim.Run();
    return net.stats();
  };
  EXPECT_TRUE(run(false) == run(true));
}

}  // namespace
}  // namespace gridvine
