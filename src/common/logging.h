#ifndef GRIDVINE_COMMON_LOGGING_H_
#define GRIDVINE_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace gridvine {

/// Log severities, coarsest filter wins.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded. Defaults to
/// kWarning so tests and benches stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink; flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gridvine

#define GV_LOG(level)                                                  \
  ::gridvine::internal::LogMessage(::gridvine::LogLevel::k##level,     \
                                   __FILE__, __LINE__)

#endif  // GRIDVINE_COMMON_LOGGING_H_
