#include "rdf/triple.h"

#include <iomanip>
#include <sstream>

#include "common/hash.h"
#include "common/string_util.h"

namespace gridvine {

const char* TriplePosName(TriplePos pos) {
  switch (pos) {
    case TriplePos::kSubject:
      return "subject";
    case TriplePos::kPredicate:
      return "predicate";
    case TriplePos::kObject:
      return "object";
  }
  return "?";
}

const Term& Triple::at(TriplePos pos) const {
  switch (pos) {
    case TriplePos::kSubject:
      return subject_;
    case TriplePos::kPredicate:
      return predicate_;
    case TriplePos::kObject:
      return object_;
  }
  return subject_;
}

Status Triple::Validate() const {
  if (!subject_.IsUri()) {
    return Status::InvalidArgument("triple subject must be a URI, got " +
                                   subject_.ToString());
  }
  if (!predicate_.IsUri()) {
    return Status::InvalidArgument("triple predicate must be a URI, got " +
                                   predicate_.ToString());
  }
  if (object_.IsVariable()) {
    return Status::InvalidArgument("triple object must be constant, got " +
                                   object_.ToString());
  }
  if (subject_.value().empty() || predicate_.value().empty()) {
    return Status::InvalidArgument("triple subject/predicate must be non-empty");
  }
  return Status::OK();
}

namespace {

char KindTag(TermKind kind) {
  switch (kind) {
    case TermKind::kUri:
      return 'U';
    case TermKind::kLiteral:
      return 'L';
    case TermKind::kVariable:
      return 'V';
  }
  return '?';
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '\t') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Splits on unescaped tabs and unescapes fields.
Result<std::vector<std::string>> UnescapeSplit(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool escaped = false;
  for (char c : line) {
    if (escaped) {
      cur.push_back(c);
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '\t') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (escaped) return Status::Corruption("dangling escape in: " + line);
  fields.push_back(std::move(cur));
  return fields;
}

Result<Term> ParseTerm(const std::string& field) {
  if (field.size() < 2 || field[1] != ':') {
    return Status::Corruption("malformed term field: " + field);
  }
  std::string value = field.substr(2);
  switch (field[0]) {
    case 'U':
      return Term::Uri(std::move(value));
    case 'L':
      return Term::Literal(std::move(value));
    case 'V':
      return Term::Var(std::move(value));
    default:
      return Status::Corruption("unknown term kind tag: " + field);
  }
}

}  // namespace

std::string Triple::Serialize() const {
  std::string out;
  out.push_back(KindTag(subject_.kind()));
  out.push_back(':');
  out += Escape(subject_.value());
  out.push_back('\t');
  out.push_back(KindTag(predicate_.kind()));
  out.push_back(':');
  out += Escape(predicate_.value());
  out.push_back('\t');
  out.push_back(KindTag(object_.kind()));
  out.push_back(':');
  out += Escape(object_.value());
  return out;
}

Result<std::vector<Term>> ParseTermFields(const std::string& line) {
  GV_ASSIGN_OR_RETURN(auto fields, UnescapeSplit(line));
  if (fields.size() != 3) {
    return Status::Corruption("expected 3 fields, got " +
                              std::to_string(fields.size()));
  }
  std::vector<Term> terms;
  terms.reserve(3);
  for (const auto& f : fields) {
    GV_ASSIGN_OR_RETURN(Term t, ParseTerm(f));
    terms.push_back(std::move(t));
  }
  return terms;
}

Result<Triple> Triple::Parse(const std::string& line) {
  GV_ASSIGN_OR_RETURN(auto terms, ParseTermFields(line));
  Triple t(terms[0], terms[1], terms[2]);
  GV_RETURN_NOT_OK(t.Validate());
  return t;
}

bool Triple::operator<(const Triple& other) const {
  if (subject_ != other.subject_) return subject_ < other.subject_;
  if (predicate_ != other.predicate_) return predicate_ < other.predicate_;
  return object_ < other.object_;
}

std::string MakeGlobalId(const std::string& peer_path,
                         const std::string& local_name) {
  std::ostringstream hex;
  hex << std::hex << std::setw(16) << std::setfill('0')
      << Fnv1a64(local_name);
  return "gv://" + (peer_path.empty() ? std::string("root") : peer_path) +
         "-" + hex.str() + "/" + local_name;
}

}  // namespace gridvine
