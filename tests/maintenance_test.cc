#include "pgrid/maintenance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "sim/churn.h"
#include "pgrid/pgrid_builder.h"

namespace gridvine {
namespace {

struct Overlay {
  explicit Overlay(size_t n, int key_depth = 10, uint64_t seed = 1)
      : net(&sim, std::make_unique<ConstantLatency>(0.02), Rng(seed)) {
    PGridPeer::Options opts;
    opts.key_depth = key_depth;
    opts.retry.base_timeout = 1.0;
    opts.retry.max_attempts = 3;
    for (size_t i = 0; i < n; ++i) {
      owned.push_back(
          std::make_unique<PGridPeer>(&sim, &net, Rng(seed * 17 + i), opts));
      peers.push_back(owned.back().get());
    }
  }

  void AttachAgents(MaintenanceAgent::Options opts, uint64_t seed = 9) {
    for (auto* p : peers) {
      agents.push_back(
          std::make_unique<MaintenanceAgent>(&sim, p, Rng(seed + p->id()), opts));
    }
  }

  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
  std::vector<std::unique_ptr<MaintenanceAgent>> agents;
};

TEST(MaintenanceTest, DeadRefsAreDropped) {
  Overlay o(16);
  Rng rng(4);
  PGridBuilder::BuildBalanced(o.peers, &rng, /*refs_per_level=*/2);
  o.AttachAgents({});

  // Kill one peer that peer 0 references. Eviction needs two consecutive
  // missed probes (transient-churn tolerance), hence two rounds.
  NodeId victim = o.peers[0]->routing()->RefsAt(0)[0];
  o.net.SetAlive(victim, false);

  o.agents[0]->RunRound();
  o.sim.RunUntil(o.sim.Now() + 10);
  o.agents[0]->RunRound();
  o.sim.RunUntil(o.sim.Now() + 10);

  for (int level = 0; level < o.peers[0]->routing()->levels(); ++level) {
    for (NodeId ref : o.peers[0]->routing()->RefsAt(level)) {
      EXPECT_NE(ref, victim);
    }
  }
  EXPECT_GE(o.agents[0]->stats().refs_removed, 1u);
}

TEST(MaintenanceTest, LiveRefsAreKept) {
  Overlay o(16);
  Rng rng(4);
  PGridBuilder::BuildBalanced(o.peers, &rng, 2);
  o.AttachAgents({});
  // Remember the refs present before the round.
  std::set<std::pair<int, NodeId>> before;
  for (int level = 0; level < o.peers[0]->routing()->levels(); ++level) {
    for (NodeId ref : o.peers[0]->routing()->RefsAt(level)) {
      before.insert({level, ref});
    }
  }
  o.agents[0]->RunRound();
  o.sim.RunUntil(o.sim.Now() + 10);
  // Nothing evicted (every ref answered its probe); the gossip phase may
  // have ADDED refs on top, which is fine.
  EXPECT_EQ(o.agents[0]->stats().refs_removed, 0u);
  for (const auto& [level, ref] : before) {
    const auto& refs = o.peers[0]->routing()->RefsAt(level);
    EXPECT_NE(std::find(refs.begin(), refs.end(), ref), refs.end())
        << "lost live ref " << ref << " at level " << level;
  }
}

TEST(MaintenanceTest, ThinLevelsRefillThroughGossip) {
  Overlay o(16);
  Rng rng(4);
  // Build with only 1 ref per level; agents want 2.
  PGridBuilder::BuildBalanced(o.peers, &rng, /*refs_per_level=*/1);
  MaintenanceAgent::Options opts;
  opts.min_refs_per_level = 2;
  o.AttachAgents(opts);

  // Several rounds of gossip + adoption.
  for (int round = 0; round < 5; ++round) {
    for (auto& agent : o.agents) agent->RunRound();
    o.sim.RunUntil(o.sim.Now() + 10);
  }

  size_t total_added = 0;
  for (auto& agent : o.agents) total_added += agent->stats().refs_added;
  EXPECT_GT(total_added, 0u);
  // Adopted refs must satisfy the level invariant.
  for (auto* p : o.peers) {
    for (int level = 0; level < p->routing()->levels(); ++level) {
      for (NodeId ref : p->routing()->RefsAt(level)) {
        const Key& other = o.peers[ref]->path();
        EXPECT_EQ(other.CommonPrefixLength(p->path()), level);
        EXPECT_NE(other.bit(level), p->path().bit(level));
      }
    }
  }
}

TEST(MaintenanceTest, RepairsRoutingAfterMassFailure) {
  Overlay o(32);
  Rng rng(4);
  PGridBuilder::BuildBalanced(o.peers, &rng, /*refs_per_level=*/3);
  MaintenanceAgent::Options opts;
  opts.period = 20.0;
  opts.min_refs_per_level = 2;
  o.AttachAgents(opts);
  for (auto& agent : o.agents) agent->Start();

  // Insert data everywhere.
  for (uint64_t k = 0; k < 32; ++k) {
    Key key = Key::FromUint(k * 31, 10);
    for (auto* p : o.peers) {
      if (p->path().IsPrefixOf(key)) {
        p->InsertLocal(key, "v" + std::to_string(k));
        break;
      }
    }
  }

  // Kill a third of the network (whole regions may vanish; queries for the
  // surviving regions must keep working after repair).
  Rng kill_rng(6);
  std::vector<NodeId> dead;
  for (NodeId id = 1; id < o.peers.size() && dead.size() < 10; ++id) {
    if (kill_rng.Bernoulli(0.5)) {
      o.net.SetAlive(id, false);
      dead.push_back(id);
    }
  }
  // Let several maintenance periods elapse, then stop the agents (otherwise
  // their perpetual rescheduling keeps the event queue non-empty forever).
  o.sim.RunUntil(o.sim.Now() + 120);
  for (auto& agent : o.agents) agent->Stop();

  // No surviving peer may still reference a dead one.
  for (auto* p : o.peers) {
    if (!o.net.IsAlive(p->id())) continue;
    for (int level = 0; level < p->routing()->levels(); ++level) {
      for (NodeId ref : p->routing()->RefsAt(level)) {
        EXPECT_TRUE(o.net.IsAlive(ref))
            << "peer " << p->id() << " still references dead " << ref;
      }
    }
  }

  // Lookups from a surviving peer toward surviving regions succeed.
  size_t tried = 0, answered = 0;
  for (uint64_t k = 0; k < 32; ++k) {
    Key key = Key::FromUint(k * 31, 10);
    bool region_alive = false;
    for (auto* p : o.peers) {
      if (p->path().IsPrefixOf(key) && o.net.IsAlive(p->id())) {
        region_alive = true;
      }
    }
    if (!region_alive) continue;
    ++tried;
    bool got = false;
    bool done = false;
    o.peers[0]->Retrieve(key, [&](Result<PGridPeer::LookupResult> r) {
      if (r.ok() && !r->values.empty()) got = true;
      done = true;
    });
    while (!done && o.sim.pending() > 0) o.sim.Run(1);
    if (got) ++answered;
  }
  ASSERT_GT(tried, 5u);
  EXPECT_GE(double(answered), 0.9 * double(tried));
}

TEST(MaintenanceTest, PeriodicRoundsRunWithJitter) {
  Overlay o(8);
  Rng rng(4);
  PGridBuilder::BuildBalanced(o.peers, &rng, 2);
  MaintenanceAgent::Options opts;
  opts.period = 10.0;
  o.AttachAgents(opts);
  o.agents[0]->Start();
  o.sim.RunUntil(100);
  // ~10 rounds expected in 100 s (jitter 0.8-1.2x).
  EXPECT_GE(o.agents[0]->stats().rounds, 7u);
  EXPECT_LE(o.agents[0]->stats().rounds, 13u);
  o.agents[0]->Stop();
  uint64_t rounds = o.agents[0]->stats().rounds;
  o.sim.RunUntil(200);
  EXPECT_EQ(o.agents[0]->stats().rounds, rounds);
}

TEST(MaintenanceTest, WithChurnAndMaintenanceLookupsKeepWorking) {
  Overlay o(32, 10, 7);
  Rng rng(4);
  PGridBuilder::BuildBalanced(o.peers, &rng, /*refs_per_level=*/3);
  MaintenanceAgent::Options mopts;
  mopts.period = 15.0;
  o.AttachAgents(mopts);
  for (auto& agent : o.agents) agent->Start();

  ChurnModel::Options copts;
  copts.mean_session_seconds = 120;
  copts.mean_downtime_seconds = 20;
  copts.pinned = {o.peers[0]->id()};
  ChurnModel churn(&o.sim, &o.net, Rng(11), copts);
  churn.Start();

  // Replicated data: every key stored at all peers of its region.
  for (uint64_t k = 0; k < 32; ++k) {
    Key key = Key::FromUint(k * 97, 10);
    for (auto* p : o.peers) {
      if (p->path().IsPrefixOf(key)) p->InsertLocal(key, "v");
    }
  }

  size_t answered = 0;
  const int kQueries = 60;
  for (int q = 0; q < kQueries; ++q) {
    o.sim.RunUntil(o.sim.Now() + 10);  // let churn/maintenance interleave
    Key key = Key::FromUint(uint64_t(q % 32) * 97, 10);
    bool got = false;
    bool done = false;
    o.peers[0]->Retrieve(key, [&](Result<PGridPeer::LookupResult> r) {
      got = r.ok() && !r->values.empty();
      done = true;
    });
    while (!done && o.sim.pending() > 0) o.sim.Run(1);
    if (got) ++answered;
  }
  churn.Stop();
  // With ~14% average downtime, replicas and live repair keep the
  // overwhelming majority of lookups working.
  EXPECT_GE(answered, size_t(kQueries * 0.8)) << answered << "/" << kQueries;
}

}  // namespace
}  // namespace gridvine
