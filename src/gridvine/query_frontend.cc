#include "gridvine/query_frontend.h"

#include <algorithm>
#include <utility>

#include "common/mem_estimate.h"

namespace gridvine {

void QueryFrontend::Submit(const TriplePatternQuery& query,
                           const GridVinePeer::QueryOptions& options,
                           GridVinePeer::QueryCallback cb) {
  ++stats_.submitted;
  Task t;
  t.query = query;
  t.options = options;
  t.cb = std::move(cb);
  OpenServeSpan(&t);
  Admit(std::move(t));
}

void QueryFrontend::SubmitConjunctive(
    const ConjunctiveQuery& query, const GridVinePeer::QueryOptions& options,
    std::function<void(GridVinePeer::ConjunctiveResult)> cb) {
  ++stats_.submitted;
  Task t;
  t.conjunctive = true;
  t.cquery = query;
  t.options = options;
  t.ccb = std::move(cb);
  OpenServeSpan(&t);
  Admit(std::move(t));
}

void QueryFrontend::OpenServeSpan(Task* t) {
  Tracer* tr = peer_->LiveTracer();
  if (tr == nullptr) return;
  t->serve_ctx = t->options.trace_parent.valid()
                     ? tr->StartSpan("op.serve", t->options.trace_parent)
                     : tr->StartTrace("op.serve");
  tr->Annotate(t->serve_ctx, "kind",
               t->conjunctive ? "conjunctive" : "pattern");
  // The query tree (op.search / op.conjunctive and everything below) nests
  // under the serve span, so one trace covers admission wait + execution.
  t->options.trace_parent = t->serve_ctx;
}

void QueryFrontend::EndServeSpan(const TraceCtx& serve, const Status& status) {
  if (!serve.valid()) return;
  Tracer* tr = peer_->LiveTracer();
  if (tr == nullptr) return;
  if (!status.ok()) tr->Annotate(serve, "error", status.ToString());
  tr->EndSpan(serve);
}

void QueryFrontend::Admit(Task t) {
  const auto& fo = peer_->options().frontend;
  if (active_ < fo.max_concurrent) {
    StartTask(std::move(t));
    return;
  }
  if (queue_.size() >= fo.max_queue) {
    Shed(std::move(t));
    return;
  }
  t.enqueued_at = sim_->Now();
  queue_.push_back(std::move(t));
  stats_.max_queue_depth =
      std::max<uint64_t>(stats_.max_queue_depth, queue_.size());
}

void QueryFrontend::Shed(Task t) {
  ++stats_.shed;
  if (t.serve_ctx.valid()) {
    if (Tracer* tr = peer_->LiveTracer()) {
      tr->Annotate(t.serve_ctx, "shed", 1.0);
      tr->EndSpan(t.serve_ctx);
    }
  }
  if (t.conjunctive) {
    GridVinePeer::ConjunctiveResult r;
    r.status = Status::Overload("admission queue full");
    t.ccb(std::move(r));
  } else {
    GridVinePeer::QueryResult r;
    r.status = Status::Overload("admission queue full");
    t.cb(std::move(r));
  }
}

void QueryFrontend::StartTask(Task t) {
  ++active_;
  ++stats_.started;
  if (t.serve_ctx.valid() && t.enqueued_at >= 0) {
    // Retroactive: the admission wait is known only now that a slot freed.
    if (Tracer* tr = peer_->LiveTracer()) {
      tr->Interval("op.queue", t.serve_ctx, t.enqueued_at, sim_->Now());
    }
  }
  // The user callback runs before the slot is freed, so queries it submits
  // synchronously queue behind the zero-delay refill event below — strict
  // FIFO either way.
  if (t.conjunctive) {
    auto cb = std::move(t.ccb);
    TraceCtx serve = t.serve_ctx;
    peer_->SearchForConjunctive(
        t.cquery, t.options,
        [this, cb, serve](GridVinePeer::ConjunctiveResult r) {
          EndServeSpan(serve, r.status);
          cb(std::move(r));
          OnTaskDone();
        });
  } else {
    auto cb = std::move(t.cb);
    TraceCtx serve = t.serve_ctx;
    peer_->SearchFor(t.query, t.options,
                     [this, cb, serve](GridVinePeer::QueryResult r) {
                       EndServeSpan(serve, r.status);
                       cb(std::move(r));
                       OnTaskDone();
                     });
  }
}

void QueryFrontend::OnTaskDone() {
  ++stats_.completed;
  --active_;
  if (queue_.empty()) return;
  // Zero-delay event: long completion chains refill iteratively, not by
  // recursing completion -> start -> completion on one stack.
  sim_->Schedule(0, [this] {
    if (queue_.empty() ||
        active_ >= peer_->options().frontend.max_concurrent) {
      return;
    }
    Task t = std::move(queue_.front());
    queue_.pop_front();
    StartTask(std::move(t));
  });
}

QueryFrontend::Stats QueryFrontend::stats() const {
  Stats s = stats_;
  s.active = active_;
  s.queued = queue_.size();
  return s;
}

size_t QueryFrontend::MemoryFootprint() const {
  return sizeof(*this) + queue_.size() * sizeof(Task);
}

}  // namespace gridvine
