// ChurnModel unit tests: on/off alternation, pinned-node exemption, the
// transition listener (the rejoin hook), and the visibility of liveness
// flips in the network's drop accounting.

#include "sim/churn.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "sim/latency.h"

namespace gridvine {
namespace {

struct PingMsg : MessageBody {
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("test.ping");
    return t;
  }
};

struct SilentNode : NetworkNode {
  int received = 0;
  void OnMessage(NodeId, std::shared_ptr<const MessageBody>) override {
    ++received;
  }
};

struct ChurnTest : ::testing::Test {
  ChurnTest() : net(&sim, std::make_unique<ConstantLatency>(0.05), Rng(7)) {
    for (auto& n : nodes) net.AddNode(&n);
  }

  Simulator sim;
  Network net;
  SilentNode nodes[4];
};

TEST_F(ChurnTest, AlternatesSessionsAndDowntime) {
  ChurnModel::Options opts;
  opts.mean_session_seconds = 10.0;
  opts.mean_downtime_seconds = 5.0;
  ChurnModel churn(&sim, &net, Rng(3), opts);

  // Record the per-node transition sequence; it must strictly alternate
  // starting with a down-flip (every node begins alive).
  std::vector<std::vector<bool>> flips(4);
  churn.SetTransitionListener(
      [&](NodeId id, bool alive) { flips[id].push_back(alive); });
  churn.Start();
  sim.RunUntil(500.0);
  churn.Stop();
  sim.Run();

  EXPECT_GT(churn.transitions(), 0u);
  uint64_t seen = 0;
  for (const auto& seq : flips) {
    ASSERT_FALSE(seq.empty());
    for (size_t i = 0; i < seq.size(); ++i) {
      // First flip takes the (initially alive) node down; then alternation.
      EXPECT_EQ(seq[i], i % 2 == 1);
    }
    seen += seq.size();
  }
  EXPECT_EQ(seen, churn.transitions());
}

TEST_F(ChurnTest, PinnedNodesNeverFlip) {
  ChurnModel::Options opts;
  opts.mean_session_seconds = 5.0;
  opts.mean_downtime_seconds = 5.0;
  opts.pinned = {0, 2};
  ChurnModel churn(&sim, &net, Rng(9), opts);
  std::vector<int> flips(4, 0);
  churn.SetTransitionListener([&](NodeId id, bool) { ++flips[id]; });
  churn.Start();
  sim.RunUntil(300.0);
  churn.Stop();
  sim.Run();

  EXPECT_EQ(flips[0], 0);
  EXPECT_EQ(flips[2], 0);
  EXPECT_GT(flips[1], 0);
  EXPECT_GT(flips[3], 0);
  EXPECT_TRUE(net.IsAlive(0));
  EXPECT_TRUE(net.IsAlive(2));
}

TEST_F(ChurnTest, ListenerFiresAfterLivenessFlip) {
  ChurnModel::Options opts;
  opts.mean_session_seconds = 5.0;
  opts.mean_downtime_seconds = 5.0;
  ChurnModel churn(&sim, &net, Rng(11), opts);
  // The documented contract: the flip is already applied when the listener
  // runs, so a rejoin handler can send immediately.
  int checked = 0;
  churn.SetTransitionListener([&](NodeId id, bool alive) {
    EXPECT_EQ(net.IsAlive(id), alive);
    ++checked;
  });
  churn.Start();
  sim.RunUntil(100.0);
  churn.Stop();
  sim.Run();
  EXPECT_GT(checked, 0);
}

TEST_F(ChurnTest, StopFreezesTransitions) {
  ChurnModel::Options opts;
  opts.mean_session_seconds = 5.0;
  opts.mean_downtime_seconds = 5.0;
  ChurnModel churn(&sim, &net, Rng(13), opts);
  churn.Start();
  sim.RunUntil(50.0);
  churn.Stop();
  const uint64_t frozen = churn.transitions();
  sim.Run();  // already-scheduled transition events fire as no-ops
  EXPECT_EQ(churn.transitions(), frozen);
}

// A down destination silently eats traffic, and the drop is attributed to
// the endpoint cause — churn is visible in the network's accounting, which
// is what the reliable request layer's timeouts react to.
TEST_F(ChurnTest, DownNodeDropsAreAttributedToEndpoint) {
  ChurnModel::Options opts;
  opts.mean_session_seconds = 4.0;
  opts.mean_downtime_seconds = 4.0;
  opts.pinned = {0};  // the sender stays up
  ChurnModel churn(&sim, &net, Rng(17), opts);
  churn.Start();

  // Ping node 1 every 0.5 s for 200 s; roughly half the sends hit downtime.
  for (int i = 0; i < 400; ++i) {
    sim.ScheduleAt(0.5 * i, [this]() {
      net.Send(0, 1, std::make_shared<PingMsg>());
    });
  }
  sim.RunUntil(250.0);
  churn.Stop();
  sim.Run();

  const NetworkStats& st = net.stats();
  EXPECT_EQ(st.messages_sent, 400u);
  EXPECT_GT(st.drops_endpoint, 0u);
  EXPECT_EQ(st.drops_endpoint, st.messages_dropped);  // only cause here
  EXPECT_EQ(st.messages_delivered + st.messages_dropped, st.messages_sent);
  EXPECT_EQ(st.DropsForType("test.ping"), st.messages_dropped);
  EXPECT_EQ(nodes[1].received, int(st.messages_delivered));
  // With a 50% duty cycle both outcomes must occur.
  EXPECT_GT(st.messages_delivered, 0u);
}

}  // namespace
}  // namespace gridvine
