#ifndef GRIDVINE_SIM_SIMULATOR_H_
#define GRIDVINE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gridvine {

/// Simulated wall-clock time in seconds.
using SimTime = double;

/// Single-threaded discrete-event scheduler. All network traffic, timers and
/// periodic maintenance in GridVine run as events on one Simulator, which
/// makes experiments deterministic and lets us measure latencies in simulated
/// seconds regardless of host speed.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (clamped to >= 0).
  void Schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `t` (clamped to >= Now()).
  void ScheduleAt(SimTime t, std::function<void()> fn);

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events executed.
  size_t Run(size_t max_events = SIZE_MAX);

  /// Runs events with firing time <= `t`, then advances the clock to `t`
  /// (unless the queue drained earlier at a later time). Returns events run.
  size_t RunUntil(SimTime t);

  /// Number of pending events.
  size_t pending() const { return queue_.size(); }

  /// Total events executed over the simulator's lifetime.
  size_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-breaker: FIFO among same-time events
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace gridvine

#endif  // GRIDVINE_SIM_SIMULATOR_H_
