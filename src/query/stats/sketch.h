#ifndef GRIDVINE_QUERY_STATS_SKETCH_H_
#define GRIDVINE_QUERY_STATS_SKETCH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/result.h"
#include "rdf/triple_pattern.h"
#include "store/triple_store.h"

namespace gridvine {

/// Cardinality estimate for one triple pattern against one peer's store
/// slice, produced by StoreSketch::EstimatePattern and consumed by the
/// cost-based planner. `known == false` means no statistics were available
/// (region never answered, sketch too stale, or the pattern is a range the
/// sketch cannot bound) — the planner degrades to the greedy heuristic for
/// such patterns.
struct PatternEstimate {
  bool known = false;
  /// Estimated extent cardinality (rows a full RemoteScan would ship).
  double rows = 0;
  /// Estimated distinct subjects/objects in the pattern's slice — the join
  /// key cardinalities the planner divides by.
  double distinct_subjects = 0;
  double distinct_objects = 0;
};

/// K-minimum-values distinct counter: keeps the k smallest 64-bit hashes
/// seen; the k-th smallest, normalized to (0, 1], estimates the distinct
/// count as (k - 1) / u_(k). Exact below k distinct values, ~12% standard
/// error at k = 64 — plenty for join-order decisions. Deterministic
/// (finalizer-mixed FNV-1a hashing, no randomness), so same data -> same
/// sketch bytes everywhere.
class KmvSketch {
 public:
  static constexpr size_t kDefaultK = 64;

  explicit KmvSketch(size_t k = kDefaultK) : k_(k) {}

  void Add(uint64_t hash);
  void AddString(std::string_view value);
  void Merge(const KmvSketch& other);

  /// Estimated distinct count (exact while fewer than k values were seen).
  double Estimate() const;

  size_t k() const { return k_; }
  size_t size() const { return mins_.size(); }

  /// "k:v1,v2,..." with the retained hashes in ascending order.
  std::string Serialize() const;
  static Result<KmvSketch> Parse(const std::string& data);

  bool operator==(const KmvSketch& other) const {
    return k_ == other.k_ && mins_ == other.mins_;
  }

 private:
  size_t k_;
  std::set<uint64_t> mins_;  ///< at most k_ smallest distinct hashes
};

/// Per-predicate slice summary: extent size plus the join-key sketches.
struct PredicateSummary {
  uint64_t rows = 0;
  KmvSketch subjects;
  KmvSketch objects;
};

/// One peer's statistics over its TripleStore slice: total rows, overall
/// distinct-subject/object sketches, and a per-predicate selectivity
/// summary. Versioned with TripleStore::version() so the responder rebuilds
/// lazily (one integer compare per StatsRequest) and issuers can judge
/// staleness; shipped over the wire inside a StatsRecord.
class StoreSketch {
 public:
  StoreSketch() = default;

  /// Builds the sketch from the store's current content, stamped with its
  /// version. O(rows); the responder amortizes it across version epochs.
  static StoreSketch Build(const TripleStore& store);

  uint64_t total_rows() const { return total_rows_; }
  uint64_t built_version() const { return built_version_; }

  /// Estimates the pattern's extent against this slice. Exact-constant
  /// positions divide by the matching distinct-count sketch; a '%' range
  /// object returns known == false (the sketch keeps no value order).
  PatternEstimate EstimatePattern(const TriplePattern& pattern) const;

  std::string Serialize() const;
  static Result<StoreSketch> Parse(const std::string& data);

  size_t MemoryFootprint() const;

 private:
  uint64_t total_rows_ = 0;
  uint64_t built_version_ = 0;
  KmvSketch subjects_{KmvSketch::kDefaultK};
  KmvSketch objects_{KmvSketch::kDefaultK};
  /// Ordered by predicate URI so serialization is canonical.
  std::map<std::string, PredicateSummary> by_predicate_;
};

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_STATS_SKETCH_H_
