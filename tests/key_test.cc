#include "common/key.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TEST(KeyTest, EmptyKey) {
  Key k;
  EXPECT_TRUE(k.empty());
  EXPECT_EQ(k.length(), 0);
  EXPECT_EQ(k.ToString(), "");
  EXPECT_DOUBLE_EQ(k.ToFraction(), 0.0);
}

TEST(KeyTest, FromBitsAcceptsBinary) {
  auto r = Key::FromBits("0110");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->length(), 4);
  EXPECT_EQ(r->bit(0), 0);
  EXPECT_EQ(r->bit(1), 1);
  EXPECT_EQ(r->bit(2), 1);
  EXPECT_EQ(r->bit(3), 0);
}

TEST(KeyTest, FromBitsRejectsNonBinary) {
  EXPECT_TRUE(Key::FromBits("01x0").status().IsInvalidArgument());
  EXPECT_TRUE(Key::FromBits("2").status().IsInvalidArgument());
}

TEST(KeyTest, FromUintProducesMsbFirst) {
  EXPECT_EQ(Key::FromUint(0b101, 3).bits(), "101");
  EXPECT_EQ(Key::FromUint(1, 4).bits(), "0001");
  EXPECT_EQ(Key::FromUint(0, 2).bits(), "00");
  EXPECT_EQ(Key::FromUint(0xFF, 8).bits(), "11111111");
}

TEST(KeyTest, FromUintClampsBitCount) {
  EXPECT_EQ(Key::FromUint(1, -3).length(), 0);
  EXPECT_EQ(Key::FromUint(1, 80).length(), 64);
}

TEST(KeyTest, WithBitAppends) {
  Key k = Key::FromUint(0b10, 2);
  EXPECT_EQ(k.WithBit(1).bits(), "101");
  EXPECT_EQ(k.WithBit(0).bits(), "100");
  EXPECT_EQ(k.bits(), "10");  // original untouched
}

TEST(KeyTest, PrefixClamps) {
  Key k = Key::FromBits("110101").value();
  EXPECT_EQ(k.Prefix(3).bits(), "110");
  EXPECT_EQ(k.Prefix(0).bits(), "");
  EXPECT_EQ(k.Prefix(100).bits(), "110101");
  EXPECT_EQ(k.Prefix(-2).bits(), "");
}

TEST(KeyTest, WithFlippedBit) {
  Key k = Key::FromBits("1010").value();
  EXPECT_EQ(k.WithFlippedBit(0).bits(), "0010");
  EXPECT_EQ(k.WithFlippedBit(3).bits(), "1011");
}

TEST(KeyTest, IsPrefixOf) {
  Key root;
  Key a = Key::FromBits("01").value();
  Key b = Key::FromBits("0110").value();
  EXPECT_TRUE(root.IsPrefixOf(a));
  EXPECT_TRUE(root.IsPrefixOf(root));
  EXPECT_TRUE(a.IsPrefixOf(b));
  EXPECT_FALSE(b.IsPrefixOf(a));
  EXPECT_TRUE(a.IsPrefixOf(a));
  EXPECT_FALSE(Key::FromBits("10").value().IsPrefixOf(b));
}

TEST(KeyTest, CommonPrefixLength) {
  Key a = Key::FromBits("0110").value();
  Key b = Key::FromBits("0101").value();
  EXPECT_EQ(a.CommonPrefixLength(b), 2);
  EXPECT_EQ(a.CommonPrefixLength(a), 4);
  EXPECT_EQ(a.CommonPrefixLength(Key()), 0);
  EXPECT_EQ(Key::FromBits("10").value().CommonPrefixLength(a), 0);
}

TEST(KeyTest, ToFraction) {
  EXPECT_DOUBLE_EQ(Key::FromBits("1").value().ToFraction(), 0.5);
  EXPECT_DOUBLE_EQ(Key::FromBits("01").value().ToFraction(), 0.25);
  EXPECT_DOUBLE_EQ(Key::FromBits("11").value().ToFraction(), 0.75);
  EXPECT_DOUBLE_EQ(Key::FromBits("0000").value().ToFraction(), 0.0);
}

TEST(KeyTest, OrderingMatchesFraction) {
  // Lexicographic bit order on equal-length keys == numeric order.
  for (uint64_t a = 0; a < 16; ++a) {
    for (uint64_t b = 0; b < 16; ++b) {
      Key ka = Key::FromUint(a, 4);
      Key kb = Key::FromUint(b, 4);
      EXPECT_EQ(ka < kb, a < b) << a << " vs " << b;
    }
  }
}

TEST(KeyTest, EqualityAndHash) {
  Key a = Key::FromBits("0101").value();
  Key b = Key::FromBits("0101").value();
  Key c = Key::FromBits("01010").value();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(KeyHash()(a), KeyHash()(b));
}

// Property sweep: round trip FromUint → bits → FromBits for many widths.
class KeyRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(KeyRoundTripTest, FromUintBitsRoundTrip) {
  int width = GetParam();
  for (uint64_t v = 0; v < (uint64_t(1) << std::min(width, 10)); ++v) {
    Key k = Key::FromUint(v, width);
    EXPECT_EQ(k.length(), width);
    auto parsed = Key::FromBits(k.bits());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KeyRoundTripTest,
                         ::testing::Values(1, 2, 5, 8, 13, 16, 32, 64));

}  // namespace
}  // namespace gridvine
