// Experiment E2 — P-Grid routing cost (paper Section 2.1):
//
//   "Retrieve(key) is intuitively efficient, i.e., O(log(|Π|)), measured in
//    terms of the number of messages required for resolving a search
//    request, for both balanced and unbalanced trees."
//
// Sweeps the network size from 2^4 to 2^12 peers and measures lookup hop
// counts on (a) a balanced trie with uniform keys and (b) an unbalanced
// (storage-adaptive) trie with heavily skewed keys. Both must scale
// logarithmically.
//
// A second, scale-focused sweep runs 100k and 1M peers on the sharded
// engine and records per-peer memory and event throughput
// (bytes_per_peer / events_per_sec in the JSON rows) — the numbers the
// compact-state + sharded-engine work is accountable to.
//
//   $ ./bench/bench_routing

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/hash.h"
#include "pgrid/pgrid_builder.h"
#include "pgrid/pgrid_peer.h"
#include "sim/sharded.h"

using namespace gridvine;

namespace {

struct Overlay {
  Overlay(size_t n, int key_depth, uint64_t seed)
      : net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(seed)) {
    PGridPeer::Options opts;
    opts.key_depth = key_depth;
    opts.retry.base_timeout = 60.0;
    for (size_t i = 0; i < n; ++i) {
      owned.push_back(
          std::make_unique<PGridPeer>(&sim, &net, Rng(seed * 131 + i), opts));
      peers.push_back(owned.back().get());
    }
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
};

struct HopStats {
  double mean = 0;
  int max = 0;
  double p99 = 0;
};

/// First peer (lowest id) whose trie path prefixes `k`, found by predecessor
/// search over the path-sorted index instead of a linear scan per key: the
/// trie paths partition the key space, so the covering prefix is the largest
/// path <= k in lexicographic bit order. The old O(keys x peers) scan made
/// key placement the dominant cost well before the 1M-peer sweep.
PGridPeer* ResponsiblePeer(
    const std::vector<std::pair<std::string, PGridPeer*>>& by_path,
    const Key& k) {
  auto it = std::upper_bound(
      by_path.begin(), by_path.end(), k.bits(),
      [](const std::string& v, const auto& e) { return v < e.first; });
  if (it == by_path.begin()) return nullptr;
  --it;
  // Back up to the first replica with these path bits (lowest id).
  while (it != by_path.begin() && std::prev(it)->first == it->first) --it;
  return it->second->path().IsPrefixOf(k) ? it->second : nullptr;
}

/// Inserts `keys` directly at responsible peers, then issues one Retrieve per
/// sampled key from a random peer and collects hop counts.
HopStats MeasureHops(Overlay* o, const std::vector<Key>& keys, Rng* rng,
                     size_t lookups) {
  std::vector<std::pair<std::string, PGridPeer*>> by_path;
  by_path.reserve(o->peers.size());
  for (auto* p : o->peers) by_path.emplace_back(p->path().bits(), p);
  std::stable_sort(by_path.begin(), by_path.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const Key& k : keys) {
    if (PGridPeer* p = ResponsiblePeer(by_path, k)) p->InsertLocal(k, "v");
  }
  std::vector<int> hops;
  for (size_t i = 0; i < lookups; ++i) {
    const Key& k = keys[i % keys.size()];
    PGridPeer* issuer = o->peers[size_t(
        rng->UniformInt(0, int64_t(o->peers.size()) - 1))];
    bool done = false;
    issuer->Retrieve(k, [&](Result<PGridPeer::LookupResult> r) {
      if (r.ok()) hops.push_back(r->hops);
      done = true;
    });
    o->sim.RunUntilFlag(&done);
  }
  HopStats stats;
  if (hops.empty()) return stats;
  std::sort(hops.begin(), hops.end());
  long total = 0;
  for (int h : hops) total += h;
  stats.mean = double(total) / double(hops.size());
  stats.max = hops.back();
  stats.p99 = hops[size_t(0.99 * double(hops.size() - 1))];
  return stats;
}

HopStats SummarizeHops(const std::vector<int>& raw) {
  std::vector<int> hops;
  for (int h : raw) {
    if (h >= 0) hops.push_back(h);
  }
  HopStats stats;
  if (hops.empty()) return stats;
  std::sort(hops.begin(), hops.end());
  long total = 0;
  for (int h : hops) total += h;
  stats.mean = double(total) / double(hops.size());
  stats.max = hops.back();
  stats.p99 = hops[size_t(0.99 * double(hops.size() - 1))];
  return stats;
}

struct ScaleResult {
  HopStats hops;
  std::vector<int> raw_hops;  // per-op; for cross-shard-count comparison
  size_t events = 0;
  double build_s = 0;
  double run_s = 0;
  double bytes_per_peer = 0;
  double events_per_sec = 0;
};

double Seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// One scale point on the sharded engine. The balanced trie is materialized
/// analytically — paths exactly as PGridBuilder::BuildBalanced assigns them
/// (peer i gets FromUint(i % leaves, depth)), but refs sampled by index math
/// per level instead of WireRouting's per-peer prefix scans, which are
/// O(n^2) at level 0 and already intractable at 100k peers.
ScaleResult RunScalePoint(size_t n, uint32_t shards, size_t lookups,
                          uint64_t seed, int key_depth) {
  auto t0 = std::chrono::steady_clock::now();

  int depth = 0;
  while ((size_t(1) << (depth + 1)) <= n) ++depth;
  const uint64_t leaves = uint64_t(1) << depth;

  ShardedNetwork::Options so;
  so.shards = shards;
  so.seed = seed;
  so.latency = std::make_unique<ConstantLatency>(0.01);
  ShardedNetwork engine(std::move(so));

  PGridPeer::Options opts;
  opts.key_depth = key_depth;
  opts.max_refs_per_level = 2;
  opts.retry.base_timeout = 60.0;
  std::vector<std::unique_ptr<PGridPeer>> peers;
  peers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    peers.push_back(std::make_unique<PGridPeer>(
        engine.SimForNext(), engine.LaneForNext(), Rng(seed * 131 + i), opts));
    peers.back()->SetPath(Key::FromUint(i % leaves, depth));
  }

  // Wire routing: for each (peer, level), sample refs uniformly from the
  // complementary subtree. A leaf value u lies in peer i's complementary
  // subtree at level L iff u's top L+1 bits equal i's with bit L flipped;
  // peers holding u are exactly {u, u + leaves, ...} < n.
  Rng wire(seed + 99);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = uint64_t(i) % leaves;
    for (int level = 0; level < depth; ++level) {
      const int suffix_bits = depth - 1 - level;
      const uint64_t base = (v >> suffix_bits) ^ 1u;
      int added = 0;
      for (int attempt = 0; attempt < 6 && added < opts.max_refs_per_level;
           ++attempt) {
        uint64_t suffix =
            suffix_bits == 0
                ? 0
                : uint64_t(wire.UniformInt(0, (int64_t(1) << suffix_bits) - 1));
        const uint64_t u = (base << suffix_bits) | suffix;
        const uint64_t copies = (uint64_t(n) - 1 - u) / leaves + 1;
        const uint64_t j =
            u + leaves * uint64_t(wire.UniformInt(0, int64_t(copies) - 1));
        if (peers[i]->routing()->AddRef(level, NodeId(j))) ++added;
      }
    }
    for (uint64_t j = v; j < n; j += leaves) {
      if (j != i) peers[i]->routing()->AddReplica(NodeId(j));
    }
  }

  // Keys land at their lowest-id responsible peer: leaf value = the key's
  // first `depth` bits, responsible id = that value itself (< leaves <= n).
  const size_t kKeys = 500;
  std::vector<Key> keys;
  keys.reserve(kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    keys.push_back(UniformHash("key" + std::to_string(i), key_depth));
  }
  for (const Key& k : keys) {
    uint64_t u = 0;
    for (int b = 0; b < depth; ++b) u = (u << 1) | uint64_t(k.bit(b));
    peers[u]->InsertLocal(k, "v");
  }

  auto t1 = std::chrono::steady_clock::now();

  // All lookups scheduled up front (staggered so the engine has concurrent
  // work in every epoch), then one RunUntilIdle — the measured phase.
  Rng lookup_rng(seed + 7);
  std::vector<int> hop_slots(lookups, -1);
  for (size_t i = 0; i < lookups; ++i) {
    const Key& k = keys[i % keys.size()];
    NodeId issuer = NodeId(lookup_rng.UniformInt(0, int64_t(n) - 1));
    engine.ScheduleForNode(issuer, 0.01 + 0.0005 * double(i), [&, i, issuer, k] {
      peers[issuer]->Retrieve(k, [&hop_slots, i](Result<PGridPeer::LookupResult> r) {
        hop_slots[i] = r.ok() ? r->hops : -2;
      });
    });
  }
  engine.RunUntilIdle();
  auto t2 = std::chrono::steady_clock::now();

  ScaleResult res;
  res.hops = SummarizeHops(hop_slots);
  res.raw_hops = std::move(hop_slots);
  res.events = engine.events_executed();
  res.build_s = Seconds(t0, t1);
  res.run_s = Seconds(t1, t2);
  size_t peer_bytes = 0;
  for (const auto& p : peers) peer_bytes += p->MemoryFootprint();
  res.bytes_per_peer =
      double(peer_bytes + engine.MemoryFootprint()) / double(n);
  res.events_per_sec =
      res.run_s > 0 ? double(res.events) / res.run_s : 0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_routing");
  const bool quick = std::getenv("GV_BENCH_QUICK") != nullptr;
  const int kKeyDepth = 20;
  const size_t kLookups = quick ? 200 : 2000;
  std::printf("E2: routing hops vs. network size (O(log N) expected)\n\n");
  std::printf("  %-7s %7s | %-25s | %-25s\n", "", "", "balanced trie",
              "adaptive trie, skewed keys");
  std::printf("  %-7s %7s | %7s %7s %7s | %7s %7s %7s\n", "peers", "log2N",
              "mean", "p99", "max", "mean", "p99", "max");

  // Power-of-two sweep, then a 10000-peer configuration — the scale the
  // event-engine overhaul targets (gossip and reformulation fan-out stay
  // interesting only if plain routing is cheap there).
  std::vector<size_t> sizes;
  for (int exp = 4; exp <= (quick ? 6 : 12); ++exp) {
    sizes.push_back(size_t(1) << exp);
  }
  if (!quick) sizes.push_back(10000);

  int seed_salt = 0;
  for (size_t n : sizes) {
    ++seed_salt;

    // (a) Balanced trie, uniform keys.
    Overlay balanced(n, kKeyDepth, 1);
    Rng rng_b(17);
    PGridBuilder::BuildBalanced(balanced.peers, &rng_b);
    std::vector<Key> uniform_keys;
    for (int i = 0; i < 500; ++i) {
      uniform_keys.push_back(UniformHash("key" + std::to_string(i), kKeyDepth));
    }
    Rng lookup_rng(seed_salt);
    HopStats hb = MeasureHops(&balanced, uniform_keys, &lookup_rng, kLookups);

    // (b) Adaptive trie over skewed keys (order-preserving hash of numeric
    // strings concentrates mass in the digit band).
    Overlay adaptive(n, kKeyDepth, 2);
    OrderPreservingHash oph(kKeyDepth);
    std::vector<Key> skewed_keys;
    for (int i = 0; i < 2000; ++i) {
      skewed_keys.push_back(oph(std::to_string(i)));
    }
    Rng rng_a(18);
    PGridBuilder::BuildAdaptive(adaptive.peers, skewed_keys, &rng_a);
    Rng lookup_rng2(seed_salt + 100);
    HopStats ha = MeasureHops(&adaptive, skewed_keys, &lookup_rng2, kLookups);

    std::printf("  %-7zu %7.1f | %7.2f %7.1f %7d | %7.2f %7.1f %7d\n", n,
                std::log2(double(n)), hb.mean, hb.p99, hb.max, ha.mean,
                ha.p99, ha.max);
    std::string row = "peers_" + std::to_string(n);
    json.Add(row + "/balanced", {{"peers", double(n)},
                                 {"shards", 1},
                                 {"mean_hops", hb.mean},
                                 {"p99_hops", hb.p99},
                                 {"max_hops", double(hb.max)}});
    json.Add(row + "/adaptive", {{"peers", double(n)},
                                 {"shards", 1},
                                 {"mean_hops", ha.mean},
                                 {"p99_hops", ha.p99},
                                 {"max_hops", double(ha.max)}});
  }
  std::printf("\n  (hops counted on the request path; 0 = issuer was "
              "responsible)\n");

  // ---- Scale sweep: 100k / 1M peers on the sharded engine ------------------
  //
  // Balanced trie only (the adaptive builder's recursive split also works at
  // this scale, but hop behaviour is the same O(log N) story). Quick mode
  // runs the 100k point as a CI smoke; the full run adds a shards=1 twin at
  // 100k (outcome must match shards=4 bit-for-bit) and the 1M point.
  struct ScalePoint {
    size_t n;
    uint32_t shards;
    size_t lookups;
  };
  std::vector<ScalePoint> points;
  if (quick) {
    points.push_back({100000, 4, 200});
  } else {
    points.push_back({100000, 1, 2000});
    points.push_back({100000, 4, 2000});
    points.push_back({1000000, 4, 1000});
  }

  std::printf("\nE2b: scale sweep on the sharded engine\n\n");
  std::printf("  %-9s %6s | %7s %7s %7s | %11s %12s | %8s %8s\n", "peers",
              "shards", "mean", "p99", "max", "bytes/peer", "events/sec",
              "build_s", "run_s");
  std::vector<int> first_100k_hops;
  for (const ScalePoint& pt : points) {
    ScaleResult r = RunScalePoint(pt.n, pt.shards, pt.lookups, /*seed=*/5,
                                  kKeyDepth);
    std::printf("  %-9zu %6u | %7.2f %7.1f %7d | %11.0f %12.0f | %8.1f %8.1f\n",
                pt.n, pt.shards, r.hops.mean, r.hops.p99, r.hops.max,
                r.bytes_per_peer, r.events_per_sec, r.build_s, r.run_s);
    if (pt.n == 100000) {
      if (first_100k_hops.empty()) {
        first_100k_hops = r.raw_hops;
      } else {
        std::printf("    100k outcome across shard counts: %s\n",
                    r.raw_hops == first_100k_hops ? "bit-identical"
                                                  : "DIVERGED");
      }
    }
    json.Add("scale_" + std::to_string(pt.n) + "/shards_" +
                 std::to_string(pt.shards),
             {{"peers", double(pt.n)},
              {"shards", double(pt.shards)},
              {"bytes_per_peer", r.bytes_per_peer},
              {"events_per_sec", r.events_per_sec},
              {"events", double(r.events)},
              {"mean_hops", r.hops.mean},
              {"p99_hops", r.hops.p99},
              {"max_hops", double(r.hops.max)},
              {"build_s", r.build_s},
              {"run_s", r.run_s}});
  }
  json.Finish();
  return 0;
}
