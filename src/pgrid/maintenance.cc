#include "pgrid/maintenance.h"

#include <set>

namespace gridvine {

MaintenanceAgent::MaintenanceAgent(Simulator* sim, PGridPeer* peer, Rng rng,
                                   Options options)
    : sim_(sim), peer_(peer), rng_(rng), options_(options) {
  peer_->AddProtocolHandler([this](NodeId from, const MessageBody& body) {
    return OnMessage(from, body);
  });
}

void MaintenanceAgent::Start() {
  running_ = true;
  ScheduleNext();
}

void MaintenanceAgent::ScheduleNext() {
  // Jitter the period slightly so whole-network rounds do not synchronize.
  SimTime delay = options_.period * rng_.UniformDouble(0.8, 1.2);
  sim_->Schedule(delay, [this] {
    if (!running_) return;
    RunRound();
    ScheduleNext();
  });
}

void MaintenanceAgent::RunRound() {
  ++stats_.rounds;
  const RoutingTable& routing = *peer_->routing();

  // Phase 1: probe everything we currently rely on.
  std::set<NodeId> contacts;
  for (int level = 0; level < routing.levels(); ++level) {
    for (NodeId ref : routing.RefsAt(level)) contacts.insert(ref);
  }
  for (NodeId rep : routing.replicas()) contacts.insert(rep);
  for (NodeId id : contacts) Probe(id, ProbeKind::kExistingRef);

  // Re-probe parked (previously evicted) contacts: a churned peer that is
  // back online gets re-adopted.
  for (NodeId id : parked_) {
    if (!contacts.count(id)) Probe(id, ProbeKind::kCandidate);
  }

  // Phase 2: if some level is thin, gossip for candidates through a random
  // live contact (best effort — the response handler does the adopting).
  bool needs_refill = false;
  for (int level = 0; level < routing.levels(); ++level) {
    if (int(routing.RefsAt(level).size()) < options_.min_refs_per_level) {
      needs_refill = true;
      break;
    }
  }
  if (needs_refill && !contacts.empty()) {
    std::vector<NodeId> pool(contacts.begin(), contacts.end());
    auto req = std::make_shared<RefsRequest>();
    req->nonce = next_nonce_++;
    req->origin = peer_->id();
    pending_refs_nonce_ = req->nonce;
    peer_->SendMessage(rng_.PickOne(pool), std::move(req));
  }
}

void MaintenanceAgent::Probe(NodeId target, ProbeKind kind) {
  uint64_t nonce = next_nonce_++;
  pending_probes_[nonce] = PendingProbe{target, kind};
  ++stats_.probes_sent;
  auto ping = std::make_shared<PingRequest>();
  ping->nonce = nonce;
  ping->origin = peer_->id();
  peer_->SendMessage(target, std::move(ping));

  sim_->Schedule(options_.probe_timeout, [this, nonce] {
    auto it = pending_probes_.find(nonce);
    if (it == pending_probes_.end()) return;  // answered in time
    PendingProbe probe = it->second;
    pending_probes_.erase(it);
    if (probe.kind == ProbeKind::kExistingRef) {
      // Tolerate transient churn: evict only after several consecutive
      // misses, and keep the contact parked for later re-adoption.
      int misses = ++miss_counts_[probe.target];
      if (misses >= options_.evict_after_misses) {
        peer_->routing()->RemoveRef(probe.target);
        peer_->routing()->RemoveReplica(probe.target);
        miss_counts_.erase(probe.target);
        if (parked_.size() < options_.max_parked) {
          parked_.insert(probe.target);
        }
        ++stats_.refs_removed;
      }
    }
    // A dead candidate is simply not adopted.
  });
}

bool MaintenanceAgent::OnMessage(NodeId /*from*/, const MessageBody& body) {
  if (const auto* pong = dynamic_cast<const PingResponse*>(&body)) {
    OnPong(*pong);
    return true;
  }
  if (const auto* refs = dynamic_cast<const RefsResponse*>(&body)) {
    if (refs->nonce != pending_refs_nonce_) return true;  // stale gossip
    pending_refs_nonce_ = 0;
    // The responder itself is a live contact worth classifying, alongside
    // every unknown candidate it shared.
    Adopt(refs->responder, refs->responder_path);
    std::set<NodeId> known;
    const RoutingTable& routing = *peer_->routing();
    for (int level = 0; level < routing.levels(); ++level) {
      for (NodeId ref : routing.RefsAt(level)) known.insert(ref);
    }
    for (NodeId rep : routing.replicas()) known.insert(rep);
    for (NodeId candidate : refs->candidates) {
      if (candidate == peer_->id() || known.count(candidate)) continue;
      Probe(candidate, ProbeKind::kCandidate);
    }
    return true;
  }
  return false;
}

void MaintenanceAgent::OnPong(const PingResponse& pong) {
  auto it = pending_probes_.find(pong.nonce);
  if (it == pending_probes_.end()) return;  // answered after the deadline
  PendingProbe probe = it->second;
  pending_probes_.erase(it);
  miss_counts_.erase(probe.target);
  if (probe.kind == ProbeKind::kCandidate) {
    Adopt(pong.responder, pong.path);
    parked_.erase(probe.target);
  }
  // Existing refs that answered need no action.
}

void MaintenanceAgent::Adopt(NodeId id, const Key& path) {
  if (id == peer_->id()) return;
  const Key& mine = peer_->path();
  if (path == mine) {
    size_t before = peer_->routing()->replicas().size();
    peer_->routing()->AddReplica(id);
    if (peer_->routing()->replicas().size() > before) ++stats_.replicas_added;
    return;
  }
  int level = mine.CommonPrefixLength(path);
  if (level >= mine.length() || level >= path.length()) {
    // One path prefixes the other: region overlap, not a valid level ref.
    return;
  }
  if (peer_->routing()->AddRef(level, id)) ++stats_.refs_added;
}

}  // namespace gridvine
