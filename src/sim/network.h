#ifndef GRIDVINE_SIM_NETWORK_H_
#define GRIDVINE_SIM_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/trace.h"
#include "sim/fault_plan.h"
#include "sim/latency.h"
#include "sim/msg_type.h"
#include "sim/simulator.h"

namespace gridvine {

class MetricsRegistry;

/// Identifies a node (machine) on the simulated network.
/// (Declared in sim/fault_plan.h; redeclared here for readers.)
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Base class for all simulated message payloads. Payloads are passed by
/// shared_ptr within the single simulation process; SizeBytes() lets the
/// network account for (approximate) wire traffic without serializing.
struct MessageBody {
  virtual ~MessageBody() = default;
  /// Approximate serialized size, for traffic accounting.
  virtual size_t SizeBytes() const { return 64; }
  /// Interned type tag for tracing/statistics. Implementations intern the
  /// name once in a function-local static, e.g.
  ///   static const MsgType t = MsgType::Intern("pgrid.retrieve");
  ///   return t;
  /// so the per-message cost is an integer copy, not a string allocation.
  virtual MsgType TypeTag() const = 0;
  /// Causal context set by the sender before Send(). When valid it becomes
  /// the parent of this message's flight span (explicit wins over the
  /// ambient delivery context); envelope types must copy their payload's ctx
  /// here so Send() — which only sees the envelope — parents correctly.
  TraceCtx trace_ctx{};
};

/// A node attached to the network: receives messages delivered to its id.
class NetworkNode {
 public:
  virtual ~NetworkNode() = default;
  /// Invoked by the network when a message arrives (the node is alive).
  virtual void OnMessage(NodeId from,
                         std::shared_ptr<const MessageBody> body) = 0;
};

/// Cumulative traffic counters.
///
/// Drop accounting contract: messages_sent, bytes_sent and the per-type
/// counters are recorded at Send() time and therefore INCLUDE messages that
/// are dropped — whether at send time (dead endpoint, loss, fault plan) or
/// in flight (destination died before delivery). They measure offered load,
/// what the sender put on the wire. messages_delivered counts only actual
/// deliveries and messages_dropped counts every drop. A fault-plan duplicate
/// is an extra in-flight copy that was never Send()-counted but does get
/// delivered or dropped, so the drain invariant (checked by the chaos
/// harness) is:
///   messages_sent + messages_duplicated == messages_delivered
///                                          + messages_dropped.
/// Drops are further attributed by cause (the drops_* counters, which sum to
/// messages_dropped) and by message type (drops_by_type).
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;  // every drop, all causes
  uint64_t messages_duplicated = 0;  // extra copies created by a FaultPlan
  uint64_t bytes_sent = 0;
  /// Cause attribution; drops_endpoint + drops_loss + drops_burst +
  /// drops_partition == messages_dropped.
  uint64_t drops_endpoint = 0;   // endpoint dead/unknown (send or delivery)
  uint64_t drops_loss = 0;       // base independent loss
  uint64_t drops_burst = 0;      // FaultPlan loss burst
  uint64_t drops_partition = 0;  // FaultPlan partition
  /// Per-type counters indexed by MsgType::id(); ids beyond a vector's size
  /// are implicitly zero (the vectors grow lazily on first sight of a type).
  std::vector<uint64_t> messages_by_type;
  std::vector<uint64_t> bytes_by_type;
  /// Per-type drop attribution (same indexing; counts drops of all causes).
  std::vector<uint64_t> drops_by_type;

  /// Name-resolved accessors for benches and tests (0 for unseen types).
  uint64_t MessagesForType(std::string_view name) const;
  uint64_t BytesForType(std::string_view name) const;
  uint64_t DropsForType(std::string_view name) const;
  /// All non-zero per-type message counts keyed by resolved name.
  std::map<std::string, uint64_t> MessagesByTypeName() const;

  /// Adds these counters into `metrics` under "net.*" (plus per-type
  /// "net.msg.<type>.*"). Shared by Network::PublishMetrics and the sharded
  /// engine's lane aggregation.
  void Publish(MetricsRegistry* metrics) const;

  /// Adds `other`'s counters into this (per-type vectors grow as needed);
  /// how the sharded engine folds its per-lane stats into one view.
  void Accumulate(const NetworkStats& other);

  friend bool operator==(const NetworkStats&, const NetworkStats&) = default;
};

/// The simulated transport: point-to-point delivery with sampled latency and
/// optional loss; respects node liveness (churn). The network plays the role
/// of the "Internet layer" in the paper's Figure 1.
///
/// The node-facing operations (AddNode/Send/liveness) are virtual: peers
/// hold a Network* and work unchanged whether it is this single-threaded
/// transport or a shard lane of the parallel engine (sim/sharded.h). The
/// indirect call per send is noise next to the delivery record scheduling.
///
/// Hot-path note: Send() schedules a plain-struct delivery record (not a
/// capturing lambda) that fits EventFn's inline buffer, and type accounting
/// is two integer-indexed vector bumps — steady-state send+delivery performs
/// no heap allocation beyond the message body the caller already built.
class Network {
 public:
  /// `loss_probability` drops each message independently (default lossless).
  Network(Simulator* sim, std::unique_ptr<LatencyModel> latency, Rng rng,
          double loss_probability = 0.0);
  virtual ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node under a fresh id; the node starts alive.
  /// The caller retains ownership of `node`, which must outlive the network.
  virtual NodeId AddNode(NetworkNode* node);

  /// Marks a node up/down (churn). Messages to a down node are dropped;
  /// a down node sends nothing.
  virtual void SetAlive(NodeId id, bool alive);
  virtual bool IsAlive(NodeId id) const;

  /// Sends `body` from `from` to `to`. Delivery is scheduled after a sampled
  /// latency; the message is dropped if either endpoint is dead at send time
  /// or the destination is dead at delivery time (no error feedback, like
  /// UDP — timeouts are the caller's job; see src/pgrid's reliable request
  /// layer for the retrying wrapper). See NetworkStats for which counters
  /// include drops.
  virtual void Send(NodeId from, NodeId to,
                    std::shared_ptr<const MessageBody> body);

  /// Installs (or clears, with nullptr) a fault-injection plan. The plan is
  /// consulted on every Send() after liveness and base loss; it shares the
  /// network's Rng so faulted runs stay seed-deterministic. The network owns
  /// the plan; `fault_plan()` lets a scenario driver add windows mid-run.
  void SetFaultPlan(std::unique_ptr<FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }
  FaultPlan* fault_plan() { return fault_plan_.get(); }

  /// Number of registered nodes (alive or not).
  virtual size_t size() const { return nodes_.size(); }

  Simulator* sim() { return sim_; }
  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

  /// Attaches (or detaches, with nullptr) a tracer. While the tracer is
  /// enabled, every Send() whose causal parent is known — an explicit
  /// body->trace_ctx, or the ambient context of the delivery being handled —
  /// opens a flight span named after the message type, ended at delivery
  /// (duration = per-hop latency) or annotated with the drop cause. Untraced
  /// traffic (no parent, e.g. background maintenance) records nothing.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() { return tracer_; }
  /// The flight-span context of the delivery currently being handled (the
  /// invalid ctx outside OnMessage, or when that message was untraced).
  /// Handlers use this to parent reply spans without plumbing ctx by hand.
  TraceCtx ambient_ctx() const { return delivery_ctx_; }

  /// Adds this network's cumulative counters into `metrics` under "net.*"
  /// (plus per-type "net.msg.<type>.*").
  void PublishMetrics(MetricsRegistry* metrics) const;

 protected:
  /// Shared with shard-lane subclasses: per-lane traffic accounting. Counter
  /// bumps must stay single-threaded per instance (each lane is owned by one
  /// shard worker).
  void CountSend(MsgType type, size_t bytes);
  void CountDrop(MsgType type, DropCause cause);
  NetworkStats stats_;
  /// Protected (not private) so shard lanes carry their shard's tracer and
  /// the sharded engine can publish the ambient flight ctx around OnMessage
  /// exactly like Deliver() below does. Same single-writer rule as stats_:
  /// one worker thread per lane.
  Tracer* tracer_ = nullptr;
  /// Flight ctx of the delivery whose OnMessage is on the stack right now.
  TraceCtx delivery_ctx_{};

 private:
  struct NodeSlot {
    NetworkNode* node = nullptr;
    bool alive = true;
  };

  /// The scheduled half of Send(): a 48-byte record (32 + the flight-span
  /// TraceCtx), still exactly EventFn's inline buffer — growing this spills
  /// every delivery to the heap. shared_ptr is not trivially copyable but
  /// holds no self-references, so the record is safe to relocate bytewise
  /// (EventFn's memcpy fast path).
  struct Delivery {
    static constexpr bool kTriviallyRelocatable = true;
    Network* net;
    NodeId from;
    NodeId to;
    std::shared_ptr<const MessageBody> body;
    void operator()() { net->Deliver(from, to, std::move(body), TraceCtx{}); }
  };

  /// Delivery with its flight span aboard — scheduled only for traced sends,
  /// so the untraced hot path keeps the smaller record (16 fewer bytes
  /// copied into the event queue per message).
  struct TracedDelivery {
    static constexpr bool kTriviallyRelocatable = true;
    Network* net;
    NodeId from;
    NodeId to;
    std::shared_ptr<const MessageBody> body;
    TraceCtx ctx;  ///< flight span; always valid here
    void operator()() { net->Deliver(from, to, std::move(body), ctx); }
  };

  void Deliver(NodeId from, NodeId to, std::shared_ptr<const MessageBody> body,
               TraceCtx ctx);
  /// Annotates a flight span with its drop cause and ends it.
  void EndDropped(TraceCtx flight, DropCause cause);

  Simulator* sim_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  double loss_probability_;
  std::unique_ptr<FaultPlan> fault_plan_;
  std::vector<NodeSlot> nodes_;
};

}  // namespace gridvine

#endif  // GRIDVINE_SIM_NETWORK_H_
