// The full Section 4 demonstration: 50 distinct bioinformatic schemas shared
// by a network of a few hundred peers, EBI-style protein/nucleotide data,
// manually created mappings, and queries that traverse the mapping network.
// Prints a deployment summary, the index-load balance, and a set of
// reformulated organism queries with their provenance.
//
//   $ ./examples/bioinformatics_demo

#include <cstdio>

#include "pgrid/load_stats.h"
#include "workload/bio_workload.h"
#include "gridvine/gridvine_network.h"

using namespace gridvine;

int main() {
  // "a network running on several hundreds of peers" — 200 peers here keeps
  // the example brisk; bench/bench_query_latency runs the full 340.
  GridVineNetwork::Options net_options;
  net_options.num_peers = 200;
  // Deep keys: entity URIs share long prefixes ("ebi:P1001..."), and the
  // order-preserving hash only separates them past ~10 characters. Shallow
  // keys would pile every subject-index entry onto one overlay key.
  net_options.key_depth = 64;
  net_options.seed = 2007;
  net_options.latency = GridVineNetwork::LatencyKind::kWan;
  net_options.latency_param = 0.015;
  net_options.peer.query_timeout = 8.0;
  GridVineNetwork net(net_options);

  BioWorkload::Options wl_options;  // 50 schemas by default
  wl_options.num_entities = 300;
  wl_options.entities_per_schema = 30;
  wl_options.seed = 5;
  BioWorkload workload(wl_options);

  std::printf("GridVine bioinformatics demo\n");
  std::printf("  peers:   %zu\n", net.size());
  std::printf("  schemas: %zu\n", workload.schemas().size());
  std::printf("  triples: %zu\n\n", workload.TotalTriples());

  // Adapt the overlay trie to the actual key distribution before inserting:
  // the order-preserving hash is skewed, and P-Grid's unbalanced trie is how
  // the index stays load-balanced (compare bench_load_balance).
  {
    std::vector<Key> sample;
    const auto& h = net.peer(0)->hasher();
    for (size_t s = 0; s < workload.schemas().size(); ++s) {
      for (const auto& t : workload.TriplesFor(s)) {
        sample.push_back(h(t.subject().value()));
        sample.push_back(h(t.predicate().value()));
        sample.push_back(h(t.object().value()));
      }
    }
    net.RebuildOverlayAdaptive(sample);
  }

  // Every schema is owned by a peer that inserts its definition and data.
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    size_t owner = s % net.size();
    Status st = net.InsertSchema(owner, workload.schemas()[s]);
    if (!st.ok()) {
      std::printf("schema insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
    for (const auto& t : workload.TriplesFor(s)) {
      st = net.InsertTriple(owner, t);
      if (!st.ok()) {
        std::printf("triple insert failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }

  // Manual mappings: a bidirectional ring through all 50 schemas, so every
  // schema can reach every other through chains of reformulations.
  size_t n = workload.schemas().size();
  for (size_t s = 0; s < n; ++s) {
    auto m = workload.GroundTruthMapping(s, (s + 1) % n,
                                         "manual-" + std::to_string(s));
    if (!net.InsertMapping(s % net.size(), m).ok()) return 1;
  }
  std::printf("inserted %zu manual mappings (bidirectional ring)\n\n", n);

  // Index load balance across the overlay (the physical layer's job).
  LoadStats load = ComputeLoadStats(net.overlay_peers());
  std::printf("index load: %zu entries, mean %.1f/peer, max/mean %.2f, "
              "gini %.3f\n\n",
              load.total, load.mean, load.max_over_mean, load.gini);

  // Queries with increasing reformulation radius: recall grows with the
  // number of mapping hops allowed.
  // Organism queries — the concept every schema realizes, so reformulation
  // can in principle traverse the whole ring.
  Rng rng(31);
  auto gq = workload.MakeQuery(0, &rng, "organism");
  std::printf("query: %s\n", gq.query.ToString().c_str());
  std::printf("globally expected results: %zu\n\n",
              gq.expected_subjects.size());
  for (int hops : {0, 2, 4, 8, 16, 49}) {
    GridVinePeer::QueryOptions opts;
    opts.reformulate = hops > 0;
    opts.mode = ReformulationMode::kIterative;
    opts.max_hops = hops;
    opts.timeout = 30.0;
    auto res = net.SearchFor(0, gq.query, opts);
    std::set<std::string> found;
    for (const auto& item : res.items) found.insert(item.value.value());
    std::printf("  max %2d mapping hops: %3zu results, %2zu schemas, "
                "recall %5.1f%%\n",
                hops, found.size(), res.schemas_answered,
                BioWorkload::Recall(gq, found) * 100);
  }
  return 0;
}
