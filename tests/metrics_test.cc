#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace gridvine {
namespace {

TEST(MetricsRegistryTest, CountersAggregateAcrossPublishers) {
  MetricsRegistry m;
  m.Counter("pgrid.retries") += 3;
  m.Counter("pgrid.retries") += 2;  // second peer publishing
  EXPECT_EQ(m.Counter("pgrid.retries"), 5u);
  EXPECT_EQ(m.Counter("fresh"), 0u);  // created at zero
}

TEST(MetricsRegistryTest, GaugesAndClear) {
  MetricsRegistry m;
  m.Gauge("net.pending") = 7.5;
  EXPECT_DOUBLE_EQ(m.Gauge("net.pending"), 7.5);
  EXPECT_FALSE(m.empty());
  m.Clear();
  EXPECT_TRUE(m.empty());
}

TEST(MetricsRegistryTest, HistogramEdgesFixedOnFirstUse) {
  MetricsRegistry m;
  m.Observe("lat", {0.1, 1.0}, 0.05);
  m.Observe("lat", {9.0}, 0.5);  // edges ignored: histogram already exists
  Histogram& h = m.Histo("lat", {});
  EXPECT_EQ(h.count(), 2u);
  // First-use edges {0.1, 1.0} stand: two edges, three buckets (underflow +
  // one interval + overflow).
  EXPECT_EQ(h.num_buckets(), 3u);
}

TEST(MetricsRegistryTest, JsonSortedAndComplete) {
  MetricsRegistry m;
  m.Counter("b.count") = 2;
  m.Counter("a.count") = 1;
  m.Gauge("g") = 0.5;
  m.Observe("h", {1.0, 2.0}, 1.5);
  std::string json = m.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Sorted keys: "a.count" precedes "b.count".
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(MetricsRegistryTest, FlattenContainsEveryMetric) {
  MetricsRegistry m;
  m.Counter("c") = 4;
  m.Gauge("g") = 2.5;
  m.Observe("h", {1.0}, 0.5);
  auto rows = m.Flatten();
  bool saw_c = false, saw_g = false, saw_h_count = false, saw_h_p50 = false;
  for (const auto& [name, value] : rows) {
    if (name == "c") saw_c = value == 4.0;
    if (name == "g") saw_g = value == 2.5;
    if (name == "h.count") saw_h_count = value == 1.0;
    if (name == "h.p50") saw_h_p50 = true;
  }
  EXPECT_TRUE(saw_c);
  EXPECT_TRUE(saw_g);
  EXPECT_TRUE(saw_h_count);
  EXPECT_TRUE(saw_h_p50);
}

TEST(MetricsRegistryTest, EmptyHistogramExportsZeroPercentiles) {
  MetricsRegistry m;
  m.Histo("lat", {0.1, 1.0});  // created, never observed
  std::string json = m.ToJson();
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  auto rows = m.Flatten();
  for (const auto& [name, value] : rows) {
    if (name == "lat.count" || name == "lat.p50" || name == "lat.p99") {
      EXPECT_DOUBLE_EQ(value, 0.0) << name;
    }
  }
}

TEST(SampleStatsTest, SingleSampleAnswersItselfAtEveryPercentile) {
  SampleStats s;
  s.Add(3.25);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(s.Percentile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(s.Percentile(0.99), 3.25);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 3.25);
  EXPECT_DOUBLE_EQ(s.Min(), 3.25);
  EXPECT_DOUBLE_EQ(s.Max(), 3.25);
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
}

TEST(SampleStatsTest, NearestRankP99WithFewerThanHundredSamples) {
  // Nearest-rank: with 10 samples, p99 picks rank ceil(0.99 * 10) = 10 —
  // the maximum, not an interpolated value beyond it.
  SampleStats s;
  for (int i = 1; i <= 10; ++i) s.Add(double(i));
  EXPECT_DOUBLE_EQ(s.Percentile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.90), 9.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.95), 10.0);
}

TEST(MetricsRegistryTest, ReferencesStableAcrossInserts) {
  MetricsRegistry m;
  uint64_t& c = m.Counter("first");
  for (int i = 0; i < 100; ++i) {
    m.Counter("other." + std::to_string(i)) = uint64_t(i);
  }
  c = 42;  // must still point at "first" (node-based map)
  EXPECT_EQ(m.Counter("first"), 42u);
}

}  // namespace
}  // namespace gridvine
