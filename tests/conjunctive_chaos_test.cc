// Conjunctive queries under chaos: loss bursts, duplication and churn
// layered over the overlay while a stream of conjunctive queries runs
// through the plan-driven executor. The invariants mirror the PR 3 drain
// contract, lifted to the executor: every conjunctive op resolves exactly
// once, to OK or Timeout; no executor or pending-query state leaks; message
// conservation and drop attribution still hold.
//
// Plus the network-level differential check: with faults off, bind-join and
// collect-then-join return identical result sets on randomized stores.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fault_harness.h"
#include "gridvine/gridvine_network.h"
#include "gridvine/query_frontend.h"
#include "selforg_soak_harness.h"
#include "sim/churn.h"
#include "store/binding_codec.h"

namespace gridvine {
namespace {

TriplePattern P(Term s, Term p, Term o) {
  return TriplePattern(std::move(s), std::move(p), std::move(o));
}

/// Randomized-but-seeded triples: every entity has a type and a size; some
/// link to another entity.
std::vector<Triple> MakeTriples(uint64_t seed, int entities) {
  Rng rng(seed * 977 + 3);
  std::vector<Triple> triples;
  for (int e = 0; e < entities; ++e) {
    Term subj = Term::Uri("x:e" + std::to_string(e));
    triples.emplace_back(
        subj, Term::Uri("x:type"),
        Term::Literal(rng.Bernoulli(0.25) ? "gadget" : "widget"));
    triples.emplace_back(subj, Term::Uri("x:size"),
                         Term::Literal(std::to_string(rng.UniformInt(1, 4))));
    if (rng.Bernoulli(0.5)) {
      triples.emplace_back(
          subj, Term::Uri("x:link"),
          Term::Uri("x:e" + std::to_string(rng.UniformInt(0, entities - 1))));
    }
  }
  return triples;
}

std::vector<ConjunctiveQuery> MakeQueries() {
  return {
      ConjunctiveQuery(
          {"x", "l"},
          {P(Term::Var("x"), Term::Uri("x:type"), Term::Literal("gadget")),
           P(Term::Var("x"), Term::Uri("x:size"), Term::Var("l"))}),
      ConjunctiveQuery(
          {"x", "y"},
          {P(Term::Var("x"), Term::Uri("x:link"), Term::Var("y")),
           P(Term::Var("y"), Term::Uri("x:type"), Term::Literal("widget"))}),
      ConjunctiveQuery(
          {"x"},
          {P(Term::Uri("x:e0"), Term::Uri("x:type"), Term::Literal("widget")),
           P(Term::Var("x"), Term::Uri("x:size"), Term::Literal("2"))}),
  };
}

struct ChaosConfig {
  std::string name;
  uint64_t seed = 1;
  double loss = 0.0;
  int loss_bursts = 0;
  double duplicate_probability = 0.0;
  bool churn = false;
  int operations = 24;
  SimTime op_interval = 3.0;
  SimTime warmup = 5.0;
  /// Flash-crowd serving mode: extent cache + cross-query batching +
  /// service model on, submissions go through the QueryFrontend in bursts
  /// of `burst` identical queries per slot, and the data underneath is
  /// mutated mid-run so cached extents keep going stale. Overload becomes
  /// an acceptable terminal status (bounded queue, bursty arrivals).
  bool serving = false;
  int burst = 1;
  /// Statistics + adaptive execution mode: every peer fetches sketches
  /// before planning and re-optimizes mid-flight. Under loss, StatsRecords
  /// go missing and sketches go stale — planning must degrade to the greedy
  /// rank, never produce wrong answers or leak prefetch state.
  bool stats = false;
  /// Health mode: windowed metric snapshots + watchdog rules tick alongside
  /// the chaos. Thresholds are set aggressively so the loss-driven retry
  /// traffic must trip at least one rule during the run.
  bool health = false;
};

void RunConjunctiveChaos(const ChaosConfig& cfg) {
  SCOPED_TRACE("scenario=" + cfg.name +
               " seed=" + std::to_string(cfg.seed));

  GridVineNetwork::Options options;
  options.num_peers = 16;
  options.key_depth = 12;
  options.seed = cfg.seed;
  if (cfg.serving) {
    options.peer.cache.enabled = true;
    options.peer.batch.enabled = true;
    options.peer.service.enabled = true;
    options.peer.frontend.max_concurrent = 2;
    options.peer.frontend.max_queue = 4;
  }
  if (cfg.stats) {
    options.peer.stats.enabled = true;
    options.peer.stats.ttl = 20.0;  // sketches go stale mid-run
    options.peer.stats.fetch_timeout = 1.0;
    options.peer.stats.divergence = 2.0;  // re-optimize aggressively
  }
  GridVineNetwork net(options);

  // Data goes in before any fault window opens (placement must succeed).
  ASSERT_TRUE(net.InsertTriples(0, MakeTriples(cfg.seed, 24)).ok());
  // Deterministic hot triples the serving scenario churns mid-run (cached
  // extents over them must go stale, not get served).
  Triple hot(Term::Uri("x:hot"), Term::Uri("x:type"), Term::Literal("gadget"));
  if (cfg.serving) {
    ASSERT_TRUE(net.InsertTriple(0, hot).ok());
  }
  net.Settle();

  if (cfg.health) {
    HealthWatchdog::Options hopts;
    hopts.retry_rate_threshold = 0.02;
    hopts.retry_min_sends = 10;
    hopts.shed_rate_threshold = 0.05;
    hopts.shed_min_submitted = 3;
    net.EnableHealth(/*window_s=*/1.0, hopts);
  }

  // Fault windows from the PR 3 plan generator, placed over the op phase.
  // Base loss is expressed as one window spanning the whole op phase (rather
  // than Network-level loss) so the synchronous data load stays clean.
  FaultScenario fs;
  fs.seed = cfg.seed;
  fs.warmup = cfg.warmup;
  fs.operations = cfg.operations;
  fs.op_interval = cfg.op_interval;
  fs.loss_bursts = cfg.loss_bursts;
  fs.duplicate_probability = cfg.duplicate_probability;
  auto plan = MakeFaultPlan(fs, net.overlay_peers());
  if (cfg.loss > 0) {
    FaultPlan::LossBurst base;
    base.start = cfg.warmup;
    base.end = cfg.warmup + cfg.operations * cfg.op_interval;
    base.probability = cfg.loss;
    plan->AddLossBurst(base);
  }
  net.network()->SetFaultPlan(std::move(plan));

  ChurnModel::Options copts;
  copts.mean_session_seconds = 40.0;
  copts.mean_downtime_seconds = 12.0;
  copts.pinned = {net.peer(0)->id()};
  ChurnModel churn(net.sim(), net.network(), Rng(cfg.seed + 5), copts);
  if (cfg.churn) churn.Start();

  struct OpRecord {
    int resolutions = 0;
    Status status;
  };
  std::vector<OpRecord> ops(size_t(cfg.operations * cfg.burst));
  auto queries = MakeQueries();
  GridVinePeer* issuer = net.peer(0);
  for (int i = 0; i < cfg.operations; ++i) {
    const ConjunctiveQuery& q = queries[size_t(i) % queries.size()];
    for (int b = 0; b < cfg.burst; ++b) {
      OpRecord* rec = &ops[size_t(i * cfg.burst + b)];
      const bool serving = cfg.serving;
      net.sim()->ScheduleAt(cfg.warmup + i * cfg.op_interval,
                            [issuer, q, rec, serving] {
        auto done = [rec](GridVinePeer::ConjunctiveResult r) {
          ++rec->resolutions;
          rec->status = r.status;
        };
        if (serving) {
          issuer->frontend()->SubmitConjunctive(q, {}, done);
        } else {
          issuer->SearchForConjunctive(q, {}, done);
        }
      });
    }
  }
  if (cfg.serving) {
    // Mutate the hot triple every other op slot: remove, then re-insert one
    // slot later. Cached extents over x:type keep being invalidated while
    // the flash crowd re-queries them under loss/churn.
    for (int i = 1; i + 1 < cfg.operations; i += 2) {
      net.sim()->ScheduleAt(cfg.warmup + i * cfg.op_interval + 0.5,
                            [&net, hot] {
                              net.peer(0)->RemoveTriple(hot, [](Status) {});
                            });
      net.sim()->ScheduleAt(cfg.warmup + (i + 1) * cfg.op_interval + 0.5,
                            [&net, hot] {
                              net.peer(0)->InsertTriple(hot, [](Status) {});
                            });
    }
  }

  const SimTime stop_at = cfg.warmup + cfg.operations * cfg.op_interval + 1.0;
  net.sim()->ScheduleAt(stop_at, [&churn] { churn.Stop(); });
  net.Settle();

  // Every op resolved exactly once, to OK or Timeout (or Overload when the
  // bounded admission queue is in play).
  for (size_t i = 0; i < ops.size(); ++i) {
    SCOPED_TRACE("op " + std::to_string(i));
    ASSERT_EQ(ops[i].resolutions, 1);
    EXPECT_TRUE(ops[i].status.ok() || ops[i].status.IsTimeout() ||
                (cfg.serving && ops[i].status.IsOverload()))
        << ops[i].status;
  }

  // No leaked operator or transport state once the heap drained.
  EXPECT_EQ(net.sim()->pending(), 0u);
  for (size_t p = 0; p < net.size(); ++p) {
    EXPECT_EQ(net.peer(p)->ActiveConjunctiveExecs(), 0u) << "peer " << p;
    EXPECT_EQ(net.peer(p)->PendingQueryCount(), 0u) << "peer " << p;
  }

  if (cfg.stats) {
    // The statistics layer actually engaged under fire: sketches were
    // fetched and served, and no prefetch is left waiting once the heap
    // drained (a lost StatsRecord must be written off at the fetch timeout,
    // not strand its query).
    uint64_t fetches = 0, served = 0;
    for (size_t p = 0; p < net.size(); ++p) {
      MetricsRegistry mr;
      net.peer(p)->PublishMetrics(&mr);
      fetches += uint64_t(mr.Counter("gv.stats.fetches"));
      served += uint64_t(mr.Counter("gv.stats.served"));
    }
    EXPECT_GT(fetches, 0u);
    EXPECT_GT(served, 0u);
  }

  if (cfg.serving) {
    // The serving stack actually engaged under fire: the cache saw traffic
    // and the data churn invalidated stale extents instead of serving them.
    uint64_t hits = 0, misses = 0, invalidations = 0;
    for (size_t p = 0; p < net.size(); ++p) {
      const ExtentCache* c = net.peer(p)->cache();
      hits += c->stats().hits;
      misses += c->stats().misses;
      invalidations += c->stats().invalidations;
    }
    EXPECT_GT(hits + misses, 0u);
    EXPECT_GT(invalidations, 0u);
  }

  // The PR 3 wire invariants still hold with the new message types in play.
  const NetworkStats& n = net.network()->stats();
  EXPECT_EQ(n.messages_sent + n.messages_duplicated,
            n.messages_delivered + n.messages_dropped);
  EXPECT_EQ(n.drops_endpoint + n.drops_loss + n.drops_burst +
                n.drops_partition,
            n.messages_dropped);

  if (cfg.health) {
    // The watchdog ticked throughout the run and the retry traffic the loss
    // bursts force tripped at least one rule; conservation — which the wire
    // invariant above checks the hard way — never fired.
    const HealthWatchdog* dog = net.watchdog();
    EXPECT_GT(dog->windows_evaluated(), 10u);
    EXPECT_FALSE(dog->violations().empty());
    EXPECT_EQ(dog->fired("conservation"), 0u);
    EXPECT_GT(net.timeseries()->windows(), 10u);
    // Violations surfaced as metrics on the snapshot path too.
    MetricsRegistry& mr = net.CollectMetrics();
    EXPECT_EQ(mr.Counter("health.violations"), dog->violations().size());
  }
}

TEST(ConjunctiveChaosTest, LossBursts) {
  ChaosConfig cfg;
  cfg.name = "loss";
  cfg.seed = 11;
  cfg.loss = 0.12;
  cfg.loss_bursts = 2;
  RunConjunctiveChaos(cfg);
}

TEST(ConjunctiveChaosTest, Churn) {
  ChaosConfig cfg;
  cfg.name = "churn";
  cfg.seed = 29;
  cfg.churn = true;
  RunConjunctiveChaos(cfg);
}

TEST(ConjunctiveChaosTest, LossChurnAndDuplication) {
  ChaosConfig cfg;
  cfg.name = "loss+churn+dup";
  cfg.seed = 83;
  cfg.loss = 0.08;
  cfg.loss_bursts = 1;
  cfg.duplicate_probability = 0.05;
  cfg.churn = true;
  RunConjunctiveChaos(cfg);
}

TEST(ConjunctiveChaosTest, FlashCrowdServing) {
  // Flash crowd through the full serving stack (frontend + cache + batcher
  // + service model) layered over loss and churn, with the hot data mutated
  // mid-run. The drain contract must hold with Overload as a third legal
  // terminal status, and invalidation must beat staleness.
  ChaosConfig cfg;
  cfg.name = "flash-crowd";
  cfg.seed = 101;
  cfg.loss = 0.06;
  cfg.loss_bursts = 1;
  cfg.churn = true;
  cfg.serving = true;
  cfg.burst = 3;
  cfg.health = true;
  RunConjunctiveChaos(cfg);
}

TEST(ConjunctiveChaosTest, StatsAdaptiveUnderLossAndChurn) {
  // Distributed statistics + adaptive execution under the full chaos stack:
  // sketch fetches are single-attempt, so the loss bursts routinely kill
  // StatsRecords and whole prefetch waves must degrade to greedy planning
  // at the fetch timeout. The drain contract and wire invariants must hold
  // with the two new message types in play.
  ChaosConfig cfg;
  cfg.name = "stats-adaptive";
  cfg.seed = 47;
  cfg.loss = 0.10;
  cfg.loss_bursts = 2;
  cfg.duplicate_probability = 0.05;
  cfg.churn = true;
  cfg.stats = true;
  RunConjunctiveChaos(cfg);
}

/// Network-level differential: cost-based/adaptive execution must return
/// exactly the rows greedy planning returns — statistics change shipping
/// costs, never answers. The stats deployment issues each query twice (the
/// first run's prefetch warms the sketch cache, the second plans cost-based
/// with observed-cardinality overrides in place).
TEST(ConjunctiveDifferentialTest, CostBasedMatchesGreedyRows) {
  for (uint64_t seed : {7u, 21u}) {
    GridVineNetwork::Options greedy_opts;
    greedy_opts.num_peers = 16;
    greedy_opts.key_depth = 12;
    greedy_opts.seed = seed;
    GridVineNetwork greedy_net(greedy_opts);
    ASSERT_TRUE(greedy_net.InsertTriples(0, MakeTriples(seed, 30)).ok());
    greedy_net.Settle();

    GridVineNetwork::Options stats_opts = greedy_opts;
    stats_opts.peer.stats.enabled = true;
    stats_opts.peer.stats.divergence = 2.0;
    GridVineNetwork stats_net(stats_opts);
    ASSERT_TRUE(stats_net.InsertTriples(0, MakeTriples(seed, 30)).ok());
    stats_net.Settle();

    size_t nonempty = 0;
    for (const auto& q : MakeQueries()) {
      auto greedy = greedy_net.SearchForConjunctive(1, q);
      ASSERT_TRUE(greedy.status.ok()) << q.ToString();
      std::set<std::string> greedy_rows;
      for (const auto& row : greedy.rows)
        greedy_rows.insert(SerializeBindings({row}));

      for (int run = 0; run < 2; ++run) {
        auto cost = stats_net.SearchForConjunctive(1, q);
        ASSERT_TRUE(cost.status.ok()) << q.ToString() << " run " << run;
        std::set<std::string> cost_rows;
        for (const auto& row : cost.rows)
          cost_rows.insert(SerializeBindings({row}));
        EXPECT_EQ(cost_rows, greedy_rows)
            << "seed=" << seed << " run=" << run << " " << q.ToString();
      }
      if (!greedy.rows.empty()) ++nonempty;
    }
    EXPECT_GT(nonempty, 0u);
    // The second runs actually planned on statistics.
    const StatsCache* sc = stats_net.peer(1)->stats_cache();
    ASSERT_NE(sc, nullptr);
    EXPECT_GT(sc->stats().refreshes, 0u);
    EXPECT_GT(sc->stats().hits, 0u);
  }
}

/// Continuous self-organization layered over the full chaos stack: loss
/// bursts + duplication from the PR 3 fault plan, ChurnModel churn, and a
/// conjunctive query stream — all while SelfOrganizer::RunContinuous builds
/// and assesses the mediation layer in the background. Checks the query
/// drain contract, the wire invariants, and that the incremental assessor
/// leaks no state across the faulty rounds. Returns the run's fingerprint
/// for the replay check.
std::string RunSelforgChaos(uint64_t seed) {
  SCOPED_TRACE("selforg-chaos seed=" + std::to_string(seed));

  GridVineNetwork::Options options;
  options.num_peers = 8;
  options.key_depth = 12;
  options.seed = seed;
  options.peer.query_timeout = 4.0;
  GridVineNetwork net(options);

  // Bio schemas/data (the organizer's substrate) plus the entity triples
  // the conjunctive stream queries; both load before any fault window.
  BioWorkload::Options wo;
  wo.num_schemas = 5;
  wo.num_entities = 40;
  wo.entities_per_schema = 16;
  wo.min_attrs = 4;
  wo.max_attrs = 6;
  wo.value_noise = 0.0;
  wo.seed = 21;
  BioWorkload workload(wo);
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    EXPECT_TRUE(net.InsertSchema(s, workload.schemas()[s]).ok());
    EXPECT_TRUE(net.InsertTriples(s, workload.TriplesFor(s)).ok());
  }
  EXPECT_TRUE(net.InsertTriples(0, MakeTriples(seed, 24)).ok());
  net.Settle();

  FaultScenario fs;
  fs.seed = seed;
  fs.warmup = 5.0;
  fs.operations = 12;
  fs.op_interval = 3.0;
  fs.loss_bursts = 2;
  fs.duplicate_probability = 0.04;
  auto plan = MakeFaultPlan(fs, net.overlay_peers());
  FaultPlan::LossBurst base;
  base.start = fs.warmup;
  base.end = fs.warmup + fs.operations * fs.op_interval;
  base.probability = 0.08;
  plan->AddLossBurst(base);
  net.network()->SetFaultPlan(std::move(plan));

  ChurnModel::Options copts;
  copts.mean_session_seconds = 40.0;
  copts.mean_downtime_seconds = 12.0;
  copts.pinned = {net.peer(0)->id()};
  ChurnModel churn(net.sim(), net.network(), Rng(seed + 5), copts);
  churn.Start();

  struct OpRecord {
    int resolutions = 0;
    Status status;
  };
  std::vector<OpRecord> ops(size_t(fs.operations));
  auto queries = MakeQueries();
  GridVinePeer* issuer = net.peer(0);
  for (int i = 0; i < fs.operations; ++i) {
    const ConjunctiveQuery& q = queries[size_t(i) % queries.size()];
    OpRecord* rec = &ops[size_t(i)];
    net.sim()->ScheduleAt(fs.warmup + i * fs.op_interval, [issuer, q, rec] {
      issuer->SearchForConjunctive(q, {},
                                   [rec](GridVinePeer::ConjunctiveResult r) {
                                     ++rec->resolutions;
                                     rec->status = r.status;
                                   });
    });
  }
  const SimTime stop_at = fs.warmup + fs.operations * fs.op_interval + 1.0;
  net.sim()->ScheduleAt(stop_at, [&churn] { churn.Stop(); });

  SelfOrganizer::Options oo;
  oo.domain = "protein-sequences";
  oo.creations_per_round = 3;
  oo.seed = 9;
  SelfOrganizer organizer(&net, oo);
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    organizer.RegisterSchemaOwner(workload.schemas()[s].name(), s);
  }

  // 14 slices of 3s cover the whole op/fault phase; query ops, fault
  // windows and churn transitions fire inside the slices, rounds run
  // between them.
  std::vector<SelfOrganizer::RoundReport> reports =
      organizer.RunContinuous(14, 3.0);
  net.Settle();  // churn stopped at stop_at; remaining timeouts drain

  // Fault-free convergence tail with every peer back up (ChurnModel leaves
  // its last transition state behind).
  for (size_t p = 0; p < net.size(); ++p) net.SetAlive(p, true);
  for (int r = 0; r < 2; ++r) {
    net.RunUntil(net.Now() + 1.0);
    reports.push_back(organizer.RunRound());
  }
  net.Settle();

  // Query drain contract: every conjunctive op resolved exactly once, to OK
  // or Timeout, with the self-organization traffic in flight.
  for (size_t i = 0; i < ops.size(); ++i) {
    SCOPED_TRACE("op " + std::to_string(i));
    EXPECT_EQ(ops[i].resolutions, 1);
    EXPECT_TRUE(ops[i].status.ok() || ops[i].status.IsTimeout())
        << ops[i].status;
  }
  EXPECT_EQ(net.sim()->pending(), 0u);
  for (size_t p = 0; p < net.size(); ++p) {
    EXPECT_EQ(net.peer(p)->ActiveConjunctiveExecs(), 0u) << "peer " << p;
    EXPECT_EQ(net.peer(p)->PendingQueryCount(), 0u) << "peer " << p;
  }

  // Wire invariants with mediation-layer message types in the mix.
  const NetworkStats& n = net.network()->stats();
  EXPECT_EQ(n.messages_sent + n.messages_duplicated,
            n.messages_delivered + n.messages_dropped);
  EXPECT_EQ(n.drops_endpoint + n.drops_loss + n.drops_burst +
                n.drops_partition,
            n.messages_dropped);

  // Organization progressed and no assessment state leaked: the maintained
  // factor graph equals a fresh rebuild from the same view despite failed
  // syncs while owners were down. (A non-empty dirty set is legitimate
  // carry-over — the round's closing sync can re-intern records whose DHT
  // replicas diverged while one was dead — so the leak check is structural
  // equality, not an empty dirty region.)
  size_t created = 0;
  for (const auto& r : reports) created += r.mappings_created;
  EXPECT_GT(created, 0u);
  EXPECT_TRUE(reports.back().bp_converged);
  MappingGraph copy = organizer.graph_view();
  copy.SetListener(nullptr);
  IncrementalAssessor fresh(organizer.assessor().options());
  fresh.Attach(&copy);
  EXPECT_EQ(organizer.assessor().StructureDigest(), fresh.StructureDigest());

  std::ostringstream fp;
  for (size_t i = 0; i < reports.size(); ++i) {
    fp << FormatRoundReport(int(i), reports[i]);
  }
  fp << AssessorFingerprint(organizer.assessor());
  return fp.str();
}

TEST(ConjunctiveChaosTest, ContinuousSelfOrganizationUnderChaos) {
  RunSelforgChaos(29);
  RunSelforgChaos(83);
}

// The layered scenario is still seed-replayable: two runs at the same seed
// produce bit-identical round reports, factor graphs and posteriors.
TEST(ConjunctiveChaosTest, SelfOrganizationChaosReplaysBitIdentically) {
  EXPECT_EQ(RunSelforgChaos(11), RunSelforgChaos(11));
}

/// Network-level differential: same deployment, same data, faults off —
/// bind-join pushdown must return exactly the collect-then-join rows.
TEST(ConjunctiveDifferentialTest, BindJoinEqualsCollectThenJoin) {
  for (uint64_t seed : {7u, 21u}) {
    GridVineNetwork::Options options;
    options.num_peers = 16;
    options.key_depth = 12;
    options.seed = seed;
    GridVineNetwork net(options);
    ASSERT_TRUE(net.InsertTriples(0, MakeTriples(seed, 30)).ok());
    net.Settle();

    size_t nonempty = 0;
    for (const auto& q : MakeQueries()) {
      GridVinePeer::QueryOptions bind_opts;
      bind_opts.bind_join = true;
      GridVinePeer::QueryOptions collect_opts;
      collect_opts.bind_join = false;

      auto bind = net.SearchForConjunctive(1, q, bind_opts);
      auto collect = net.SearchForConjunctive(2, q, collect_opts);
      ASSERT_TRUE(bind.status.ok()) << q.ToString();
      ASSERT_TRUE(collect.status.ok()) << q.ToString();

      std::set<std::string> bind_rows, collect_rows;
      for (const auto& row : bind.rows)
        bind_rows.insert(SerializeBindings({row}));
      for (const auto& row : collect.rows)
        collect_rows.insert(SerializeBindings({row}));
      EXPECT_EQ(bind_rows, collect_rows) << "seed=" << seed << " "
                                         << q.ToString();
      if (!bind.rows.empty()) ++nonempty;
    }
    EXPECT_GT(nonempty, 0u);
  }
}

}  // namespace
}  // namespace gridvine
