#ifndef GRIDVINE_COMMON_TRACE_H_
#define GRIDVINE_COMMON_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gridvine {

/// Causal trace context carried on every simulated message and delivery: the
/// trace (one user-visible operation) and the span that caused the carrier.
/// 16 bytes, trivially copyable — riding it on a message body or a Delivery
/// record costs two register copies and no allocation. A zero span_id means
/// "not traced" (the disabled-mode default).
struct TraceCtx {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return span_id != 0; }
};

/// Records spans — named intervals of *simulated* time with a parent link
/// and key/value annotations — into a bounded ring buffer, and exports them
/// as Chrome trace_event JSON (loadable in chrome://tracing or Perfetto).
///
/// Contracts:
///   - Disabled (the default), every call is a cheap early-out and performs
///     no allocation; the send+delivery hot path stays zero-alloc.
///   - Span ids come from a plain counter (optionally offset by a shard id
///     base, see SetIdBase), and no call draws from any Rng — enabling
///     tracing never perturbs a seeded run.
///   - The ring overwrites the oldest span once `capacity` is exceeded
///     (`evicted()` counts casualties); consistency checks require a
///     capacity that held the whole run.
///
/// Sharded runs give every shard its own Tracer (no locks, no sharing): ids
/// carry the shard index in the high bits so they stay unique and
/// deterministic for any shard count, and every span carries a
/// content-derived `order` key — (creator actor, per-actor counter), the same
/// shape as the engine's event subkeys but from separate counters — so the
/// per-shard rings merge into one causally-ordered stream by sorting on
/// (start, order). See TraceView for the merged read side.
///
/// Timestamps come from the clock callback (normally Simulator::Now via
/// SetClock); without one, spans sit at t = 0.
class Tracer {
 public:
  /// Span ids reserve the bits at and above this shift for the shard index
  /// (SetIdBase); the low 48 bits are the shard-local counter.
  static constexpr int kShardIdShift = 48;

  struct Annotation {
    std::string key;
    bool is_number = true;
    double number = 0;
    std::string text;
  };

  struct Span {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_id = 0;  ///< 0 for a trace root
    /// Merge key: strictly increases from parent to child within (start,
    /// order) lexicographic order. Defaults to span_id; sharded engines
    /// install a content-derived source (SetOrderSource).
    uint64_t order = 0;
    std::string_view name;   ///< literal or interned — storage outlives us
    double start = 0;
    double end = -1;  ///< simulated seconds; -1 while open
    std::vector<Annotation> annotations;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The simulated-time source for span timestamps.
  void SetClock(std::function<double()> clock) { clock_ = std::move(clock); }

  /// OR'd into every span id (shard index << kShardIdShift). The default 0
  /// yields plain counters — bit-identical to the pre-sharding scheme.
  void SetIdBase(uint64_t base) { id_base_ = base; }
  /// Installs the content-derived span-order source. Without one, order =
  /// span_id (correct for a single ring: creation order is causal order).
  void SetOrderSource(std::function<uint64_t()> source) {
    order_source_ = std::move(source);
  }

  bool enabled() const { return enabled_; }
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable() { enabled_ = false; }
  /// Drops every recorded span (enabled state and capacity kept).
  void Clear();

  /// Opens a root span: a new trace. Returns the invalid ctx when disabled.
  TraceCtx StartTrace(std::string_view name);
  /// Opens a child of `parent`; an invalid parent starts a new trace.
  TraceCtx StartSpan(std::string_view name, TraceCtx parent);
  void EndSpan(TraceCtx ctx);
  /// Ends the span at an explicit simulated time (cross-shard flight spans:
  /// the delivery happens on another shard whose clock this ring never sees).
  void EndSpanAt(TraceCtx ctx, double end);
  /// Zero-duration marker span (retries, drops observed elsewhere).
  TraceCtx Instant(std::string_view name, TraceCtx parent);
  /// Records a completed span over [start, end] — for intervals only known
  /// in retrospect (retry backoff when the timer fires, service time when
  /// the response is committed). The order key is drawn at the call, so
  /// (start, order) parent-before-child holds as long as `start` is not
  /// before the parent's start.
  TraceCtx Interval(std::string_view name, TraceCtx parent, double start,
                    double end);

  void Annotate(TraceCtx ctx, std::string_view key, double value);
  void Annotate(TraceCtx ctx, std::string_view key, std::string_view value);

  size_t size() const { return ring_.size(); }
  uint64_t evicted() const { return evicted_; }

  /// The recorded spans, oldest first.
  std::vector<Span> Snapshot() const;

  /// Chrome trace_event JSON: one "X" (complete) event per span, ts/dur in
  /// microseconds of simulated time, tid = trace id, span/parent ids, order
  /// and annotations in args.
  std::string ToChromeJson() const;

 private:
  static constexpr size_t kDefaultCapacity = 1 << 20;

  double Now() const { return clock_ ? clock_() : 0.0; }
  uint64_t NextOrder(uint64_t span_id) const {
    return order_source_ ? order_source_() : span_id;
  }
  /// Slot for a live ctx, or nullptr (ended span evicted, or stale ctx).
  Span* Find(TraceCtx ctx);
  TraceCtx Open(std::string_view name, uint64_t trace_id, uint64_t parent_id);

  bool enabled_ = false;
  size_t capacity_ = kDefaultCapacity;
  uint64_t next_id_ = 1;
  uint64_t id_base_ = 0;
  uint64_t evicted_ = 0;
  std::vector<Span> ring_;
  size_t head_ = 0;  ///< next slot to overwrite once the ring is full
  /// span_id -> ring slot, for EndSpan/Annotate on spans still buffered.
  std::unordered_map<uint64_t, size_t> index_;
  std::function<double()> clock_;
  std::function<uint64_t()> order_source_;
};

/// Chrome trace_event JSON over an explicit span list; `shards` > 1 stamps
/// otherData.shards so tooling (scripts/validate_trace.py) switches to the
/// shard-merge checks. Tracer::ToChromeJson and TraceView::ToChromeJson both
/// route here.
std::string SpansToChromeJson(const std::vector<Tracer::Span>& spans,
                              uint32_t shards);

/// One logical tracer over N per-shard rings: the read/control surface
/// callers (benches, the shell) use without caring which engine ran. Writes
/// (Enable/Disable/Clear) fan out to every part; Snapshot() merges the rings
/// into one causally-ordered stream by the (start, order) key — the same
/// content-derived ordering the sharded engine uses for events, so the
/// merged view of a shards=N run lists the same spans in the same order as
/// the shards=1 run of that seed. A classic single-threaded run is just the
/// one-part view.
class TraceView {
 public:
  TraceView() = default;
  explicit TraceView(std::vector<Tracer*> parts) : parts_(std::move(parts)) {}

  void SetParts(std::vector<Tracer*> parts) { parts_ = std::move(parts); }
  uint32_t parts() const { return uint32_t(parts_.size()); }

  bool enabled() const { return !parts_.empty() && parts_[0]->enabled(); }
  void Enable(size_t capacity_per_part = 1 << 20) {
    for (Tracer* t : parts_) t->Enable(capacity_per_part);
  }
  void Disable() {
    for (Tracer* t : parts_) t->Disable();
  }
  void Clear() {
    for (Tracer* t : parts_) t->Clear();
  }

  size_t size() const;
  uint64_t evicted() const;

  /// Roots a new trace (on the first ring — external drivers run at
  /// quiescent points, so the placement is deterministic).
  TraceCtx StartTrace(std::string_view name);
  /// Routed to the ring that owns ctx's span (shard index in the id bits).
  void EndSpan(TraceCtx ctx);
  void Annotate(TraceCtx ctx, std::string_view key, double value);
  void Annotate(TraceCtx ctx, std::string_view key, std::string_view value);

  /// All parts' spans merged by (start, order) — causal order: a parent
  /// always precedes its children.
  std::vector<Tracer::Span> Snapshot() const;
  std::string ToChromeJson() const;

 private:
  Tracer* Owner(TraceCtx ctx);
  std::vector<Tracer*> parts_;
};

/// Read-side helper over a span snapshot: per-trace counts, the structural
/// consistency invariant the chaos harness asserts, and the critical-path
/// latency attribution the benches report.
class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(std::vector<Tracer::Span> spans);

  const std::vector<Tracer::Span>& spans() const { return spans_; }
  const Tracer::Span* Find(uint64_t span_id) const;

  /// Spans with this exact name (across all traces / within one trace).
  size_t CountNamed(std::string_view name) const;
  size_t CountNamed(std::string_view name, uint64_t trace_id) const;
  /// Spans still open (end < 0).
  size_t OpenCount() const;

  /// Structural invariants: unique span ids, every parent present with a
  /// strictly smaller (start, order) key — parents are opened causally
  /// before their children, so any parent chain strictly decreases and
  /// cannot cycle — and the same trace id. Returns the empty string when
  /// consistent, else a description of the first violation.
  ///
  /// `evicted` is the tracer's eviction count: when the ring dropped spans,
  /// a missing parent is the expected signature of eviction, not corruption —
  /// such orphans are tallied in orphan_warnings() instead of failing.
  std::string CheckConsistency(uint64_t evicted = 0) const;
  /// Orphans excused by eviction during the last CheckConsistency call.
  size_t orphan_warnings() const { return orphan_warnings_; }

  /// Where a trace's end-to-end time went. Shares sum to 1 (of `total`)
  /// when total > 0.
  struct CriticalPath {
    double total = 0;    ///< root span duration, simulated seconds
    double queue = 0;    ///< frontend admission queue wait (op.queue)
    double service = 0;  ///< responder service-model time (op.service)
    double network = 0;  ///< message flights (spans named by message type)
    double retry = 0;    ///< retry backoff waits (op.backoff)
    double compute = 0;  ///< executor/peer work (all other op.*/exec.*)
  };

  /// Attribution category for a span name (the CriticalPath buckets).
  enum class Category { kQueue, kService, kNetwork, kRetry, kCompute };
  static Category CategoryOf(std::string_view name);

  /// Walks the trace rooted at `trace_id` and attributes every instant of
  /// [root.start, root.end] to the innermost span active then (latest
  /// start; (start, order) breaks ties), bucketed by CategoryOf. Gaps where
  /// only the root is active land in the root's own category. Zero result
  /// when the root is missing or never closed.
  CriticalPath CriticalPathFor(uint64_t trace_id) const;

 private:
  std::vector<Tracer::Span> spans_;
  std::unordered_map<uint64_t, size_t> by_id_;
  mutable size_t orphan_warnings_ = 0;
};

}  // namespace gridvine

#endif  // GRIDVINE_COMMON_TRACE_H_
