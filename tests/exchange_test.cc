#include "pgrid/exchange.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/hash.h"
#include "pgrid/pgrid_builder.h"

namespace gridvine {
namespace {

struct Overlay {
  explicit Overlay(size_t n, int key_depth = 8, uint64_t seed = 1)
      : net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(seed)) {
    PGridPeer::Options opts;
    opts.key_depth = key_depth;
    for (size_t i = 0; i < n; ++i) {
      owned.push_back(
          std::make_unique<PGridPeer>(&sim, &net, Rng(seed * 31 + i), opts));
      peers.push_back(owned.back().get());
    }
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
};

// Seeds every peer with data spread over the key space.
void SeedData(Overlay* o, int items_per_peer, uint64_t seed = 99) {
  Rng rng(seed);
  int i = 0;
  for (auto* p : o->peers) {
    for (int j = 0; j < items_per_peer; ++j) {
      Key k = UniformHash("item-" + std::to_string(i++) + "-" +
                              std::to_string(rng.UniformInt(0, 1 << 20)),
                          8);
      p->InsertLocal(k, "value-" + std::to_string(i));
    }
  }
}

TEST(ExchangeTest, PairSplitsWhenOverloaded) {
  Overlay o(2);
  SeedData(&o, 100);
  ExchangeProtocol::Options opts;
  opts.max_local_keys = 64;
  ExchangeProtocol ex({o.peers[0], o.peers[1]}, Rng(5), opts);
  ex.Encounter(o.peers[0], o.peers[1]);
  EXPECT_EQ(ex.splits(), 1u);
  EXPECT_EQ(o.peers[0]->path().bits(), "0");
  EXPECT_EQ(o.peers[1]->path().bits(), "1");
  // Cross references installed at level 0.
  EXPECT_EQ(o.peers[0]->routing()->RefsAt(0).size(), 1u);
  EXPECT_EQ(o.peers[1]->routing()->RefsAt(0).size(), 1u);
}

TEST(ExchangeTest, PairReplicatesWhenUnderloaded) {
  Overlay o(2);
  SeedData(&o, 5);
  ExchangeProtocol::Options opts;
  opts.max_local_keys = 64;
  ExchangeProtocol ex({o.peers[0], o.peers[1]}, Rng(5), opts);
  ex.Encounter(o.peers[0], o.peers[1]);
  EXPECT_EQ(ex.splits(), 0u);
  EXPECT_TRUE(o.peers[0]->path().empty());
  // Replicas are cross-linked and hold the same content.
  EXPECT_EQ(o.peers[0]->routing()->replicas().size(), 1u);
  EXPECT_EQ(o.peers[0]->StorageSize(), o.peers[1]->StorageSize());
}

TEST(ExchangeTest, SpecializationAgainstLongerPath) {
  Overlay o(2);
  SeedData(&o, 100);
  o.peers[1]->SetPath(Key::FromBits("01").value());
  ExchangeProtocol ex({o.peers[0], o.peers[1]}, Rng(5), {});
  ex.Encounter(o.peers[0], o.peers[1]);
  // Peer 0 (empty path) specializes away from peer 1's subtree: bit 0 of
  // peer 1 is 0, so peer 0 takes "1".
  EXPECT_EQ(o.peers[0]->path().bits(), "1");
  EXPECT_EQ(o.peers[0]->routing()->RefsAt(0).size(), 1u);
}

TEST(ExchangeTest, DivergentPathsExchangeRefs) {
  Overlay o(4);
  o.peers[0]->SetPath(Key::FromBits("00").value());
  o.peers[1]->SetPath(Key::FromBits("01").value());
  o.peers[2]->SetPath(Key::FromBits("10").value());
  // Give peer 0 a level-0 ref that peer 1 lacks.
  o.peers[0]->routing()->AddRef(0, o.peers[2]->id());
  ExchangeProtocol ex({o.peers[0], o.peers[1], o.peers[2]}, Rng(5), {});
  ex.Encounter(o.peers[0], o.peers[1]);
  // Divergence at level 1: mutual refs there.
  ASSERT_EQ(o.peers[0]->routing()->RefsAt(1).size(), 1u);
  EXPECT_EQ(o.peers[0]->routing()->RefsAt(1)[0], o.peers[1]->id());
  // Gossip: peer 1 learned peer 0's level-0 ref.
  ASSERT_EQ(o.peers[1]->routing()->RefsAt(0).size(), 1u);
  EXPECT_EQ(o.peers[1]->routing()->RefsAt(0)[0], o.peers[2]->id());
}

TEST(ExchangeTest, DataDrainsToResponsiblePeer) {
  Overlay o(2);
  o.peers[0]->SetPath(Key::FromBits("0").value());
  o.peers[1]->SetPath(Key::FromBits("1").value());
  o.peers[0]->InsertLocal(Key::FromBits("11000000").value(), "belongs-to-1");
  ExchangeProtocol ex({o.peers[0], o.peers[1]}, Rng(5), {});
  ex.Encounter(o.peers[0], o.peers[1]);
  EXPECT_EQ(o.peers[0]->StorageSize(), 0u);
  EXPECT_EQ(o.peers[1]->StorageSize(), 1u);
}

TEST(ExchangeTest, ConvergesToSpecializedNetwork) {
  Overlay o(32);
  SeedData(&o, 20);
  ExchangeProtocol::Options opts;
  opts.max_local_keys = 40;
  ExchangeProtocol ex(o.peers, Rng(5), opts);
  ex.RunRandomEncounters(5000);
  EXPECT_GT(ex.SpecializedFraction(), 0.95);
  // Paths must partition responsibility: for random keys, at least one peer
  // responsible.
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    Key k = Key::FromUint(uint64_t(rng.UniformInt(0, 255)), 8);
    bool covered = false;
    for (auto* p : o.peers) {
      if (p->IsResponsibleFor(k)) covered = true;
    }
    EXPECT_TRUE(covered) << k;
  }
  EXPECT_GT(ex.splits(), 10u);
}

TEST(ExchangeTest, LookupsWorkAfterConstructionAndRepair) {
  Overlay o(16);
  SeedData(&o, 30, /*seed=*/123);
  // Record all (key, value) pairs to query later.
  std::vector<std::pair<Key, std::string>> all;
  for (auto* p : o.peers) {
    for (const auto& [k, v] : p->storage()) all.emplace_back(k, v);
  }
  ExchangeProtocol::Options opts;
  opts.max_local_keys = 50;
  ExchangeProtocol ex(o.peers, Rng(5), opts);
  ex.RunRandomEncounters(3000);
  // A final repair pass fills ref gaps (continuous repair in real P-Grid).
  Rng rng(6);
  PGridBuilder::WireRouting(o.peers, &rng, 2);

  size_t found = 0;
  size_t checked = 0;
  for (size_t i = 0; i < all.size(); i += 7) {
    const auto& [k, v] = all[i];
    ++checked;
    o.peers[i % o.peers.size()]->Retrieve(
        k, [&, v](Result<PGridPeer::LookupResult> r) {
          if (!r.ok()) return;
          for (const auto& got : r->values) {
            if (got == v) {
              ++found;
              return;
            }
          }
        });
  }
  o.sim.Run();
  // Data may be replicated (duplicates are fine); every queried value must be
  // found somewhere.
  EXPECT_EQ(found, checked);
}

}  // namespace
}  // namespace gridvine
