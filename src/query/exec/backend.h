#ifndef GRIDVINE_QUERY_EXEC_BACKEND_H_
#define GRIDVINE_QUERY_EXEC_BACKEND_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "rdf/triple_pattern.h"
#include "store/triple_store.h"

namespace gridvine {

/// The transport abstraction the conjunctive executor drives. GridVinePeer
/// implements it over the P-Grid overlay (routing, batching, retries);
/// tests implement it with scripted local answers.
///
/// Contract: every call invokes its callback exactly once, eventually — with
/// OK, or with a terminal error (Timeout once the transport's retry budget
/// is exhausted). Callbacks may fire synchronously from within the call; the
/// executor tolerates that.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  struct ScanResult {
    Status status;
    std::vector<BindingSet> rows;
  };
  using ScanCallback = std::function<void(ScanResult)>;

  /// kRemoteScan: resolves `pattern`'s full extent — all binding rows for
  /// its variables, wherever the data lives. An unroutable pattern resolves
  /// OK with no rows (the legacy engine's semantics).
  virtual void Scan(const TriplePattern& pattern, ScanCallback cb) = 0;

  /// One bind-join answer row: the bindings of `pattern`'s free (unprobed)
  /// variables, tagged with the probe it extends.
  struct BoundRow {
    uint32_t probe_index = 0;
    BindingSet bindings;
  };
  struct BoundScanResult {
    Status status;
    std::vector<BoundRow> rows;
  };
  using BoundScanCallback = std::function<void(BoundScanResult)>;

  /// kBindJoin: `probes` are distinct binding rows over a subset of
  /// `pattern`'s variables. The backend substitutes each probe into the
  /// pattern, resolves the resulting constant-bound sub-queries at the data
  /// (batched and coalesced per destination key region), and returns, per
  /// probe, the rows for the pattern's remaining variables.
  virtual void BoundScan(const TriplePattern& pattern,
                         std::vector<BindingSet> probes,
                         BoundScanCallback cb) = 0;

  /// kExistenceCheck: true iff some stored triple matches the
  /// fully-constant pattern (looked up at its subject key).
  virtual void Exists(const TriplePattern& pattern,
                      std::function<void(Result<bool>)> cb) = 0;

  /// Causal context for the NEXT Scan/BoundScan/Exists call: the executor
  /// sets its operator span here immediately before each call, so transport
  /// backends can parent their dispatch/batch spans under the operator that
  /// issued them. Backends without tracing ignore it (the default).
  virtual void SetCallCtx(TraceCtx) {}
};

}  // namespace gridvine

#endif  // GRIDVINE_QUERY_EXEC_BACKEND_H_
