// The Section 4 demonstration storyline in miniature: bioinformatic schemas
// and data are shared in the network with NO mappings; the self-organization
// machinery monitors the connectivity indicator, creates mappings
// automatically when the mediation layer is under-connected, and deprecates
// erroneous mappings via the Bayesian cycle analysis. Query recall is
// tracked round by round.
//
//   $ ./examples/self_organizing_demo

#include <cstdio>

#include "selforg/self_organizer.h"
#include "workload/bio_workload.h"

using namespace gridvine;

namespace {

double MeasureRecall(GridVineNetwork& net, const BioWorkload& workload,
                     Rng* rng, int queries) {
  double recall_sum = 0;
  for (int i = 0; i < queries; ++i) {
    size_t s = size_t(rng->UniformInt(0, int64_t(workload.schemas().size()) - 1));
    auto gq = workload.MakeQuery(s, rng);
    GridVinePeer::QueryOptions opts;
    opts.reformulate = true;
    opts.mode = ReformulationMode::kIterative;
    auto res = net.SearchFor(s, gq.query, opts);
    std::set<std::string> found;
    for (const auto& item : res.items) found.insert(item.value.value());
    recall_sum += BioWorkload::Recall(gq, found);
  }
  return recall_sum / queries;
}

}  // namespace

int main() {
  // A 24-peer network sharing 8 heterogeneous schemas.
  GridVineNetwork::Options net_options;
  net_options.num_peers = 24;
  net_options.key_depth = 14;
  net_options.seed = 11;
  net_options.latency = GridVineNetwork::LatencyKind::kConstant;
  net_options.latency_param = 0.01;
  net_options.peer.query_timeout = 4.0;
  GridVineNetwork net(net_options);

  BioWorkload::Options wl_options;
  wl_options.num_schemas = 8;
  wl_options.num_entities = 120;
  wl_options.entities_per_schema = 40;
  wl_options.seed = 3;
  BioWorkload workload(wl_options);

  std::printf("inserting %zu schemas and %zu triples...\n",
              workload.schemas().size(), workload.TotalTriples());
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    if (!net.InsertSchema(s, workload.schemas()[s]).ok()) return 1;
    for (const auto& t : workload.TriplesFor(s)) {
      if (!net.InsertTriple(s, t).ok()) return 1;
    }
  }

  SelfOrganizer::Options org_options;
  org_options.domain = workload.options().domain;
  org_options.creations_per_round = 3;
  org_options.seed = 17;
  SelfOrganizer organizer(&net, org_options);
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    organizer.RegisterSchemaOwner(workload.schemas()[s].name(), s);
  }

  // Inject one erroneous mapping so the Bayesian analysis has work to do.
  Rng rng(99);
  auto bad = workload.ErroneousMapping(0, 1, "bad-apple", &rng);
  net.InsertMapping(0, bad);
  std::printf("injected erroneous mapping %s (precision %.2f)\n\n",
              bad.id().c_str(), workload.MappingPrecision(bad));

  std::printf("%-6s %8s %8s %9s %9s %8s %7s\n", "round", "ci", "SCC%",
              "created", "deprecated", "active", "recall");
  Rng query_rng(123);
  for (int round = 1; round <= 8; ++round) {
    auto report = organizer.RunRound();
    double recall = MeasureRecall(net, workload, &query_rng, 10);
    std::printf("%-6d %8.3f %7.0f%% %9zu %10zu %8zu %6.0f%%\n", round,
                report.ci_after, report.scc_fraction_after * 100,
                report.mappings_created, report.mappings_deprecated,
                report.active_mappings, recall * 100);
    if (report.ci_after >= 0 && report.scc_fraction_after >= 1.0) {
      std::printf("\nglobal interoperability reached (ci >= 0, giant SCC).\n");
      break;
    }
  }
  return 0;
}
