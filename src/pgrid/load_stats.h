#ifndef GRIDVINE_PGRID_LOAD_STATS_H_
#define GRIDVINE_PGRID_LOAD_STATS_H_

#include <vector>

#include "pgrid/pgrid_peer.h"

namespace gridvine {

/// Summary statistics over per-peer index loads (number of stored entries),
/// used by the load-balancing experiment (E7).
struct LoadStats {
  size_t total = 0;
  size_t max = 0;
  double mean = 0;
  double max_over_mean = 0;
  /// Gini coefficient in [0, 1): 0 = perfectly even load.
  double gini = 0;
};

/// Computes load statistics from the peers' current storage sizes.
LoadStats ComputeLoadStats(const std::vector<PGridPeer*>& peers);

/// Same summary over an arbitrary per-peer load vector — used for the
/// request-serving (replica read) imbalance measurements, where load is the
/// count of application payloads a peer served rather than entries stored.
LoadStats ComputeLoadStatsFrom(const std::vector<uint64_t>& loads_in);

/// Request-serving load per peer: payloads delivered to the extension
/// handler (RemoteScan / BoundScan and other mediation-layer requests).
LoadStats ComputeRequestLoadStats(const std::vector<PGridPeer*>& peers);

}  // namespace gridvine

#endif  // GRIDVINE_PGRID_LOAD_STATS_H_
