#include "store/binding_codec.h"

#include <gtest/gtest.h>

namespace gridvine {
namespace {

TEST(BindingCodecTest, RoundTripSingleRow) {
  BindingSet row;
  row["x"] = Term::Uri("embl:A78712");
  row["y"] = Term::Literal("Aspergillus niger");
  auto parsed = ParseBindings(SerializeBindings({row}));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].at("x"), Term::Uri("embl:A78712"));
  EXPECT_EQ((*parsed)[0].at("y"), Term::Literal("Aspergillus niger"));
}

TEST(BindingCodecTest, RoundTripMultipleRows) {
  std::vector<BindingSet> rows;
  for (int i = 0; i < 5; ++i) {
    BindingSet row;
    row["v"] = Term::Uri("id" + std::to_string(i));
    rows.push_back(row);
  }
  auto parsed = ParseBindings(SerializeBindings(rows));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 5u);
  EXPECT_EQ((*parsed)[4].at("v").value(), "id4");
}

TEST(BindingCodecTest, EmptyListRoundTrips) {
  auto parsed = ParseBindings(SerializeBindings({}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(BindingCodecTest, SeparatorCharactersEscaped) {
  BindingSet row;
  row["x"] = Term::Literal(std::string("a\x1e") + "b\x1f" + "c\\d");
  auto parsed = ParseBindings(SerializeBindings({row}));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].at("x").value(),
            std::string("a\x1e") + "b\x1f" + "c\\d");
}

TEST(BindingCodecTest, VariableKindSurvives) {
  BindingSet row;
  row["x"] = Term::Var("inner");
  auto parsed = ParseBindings(SerializeBindings({row}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE((*parsed)[0].at("x").IsVariable());
}

TEST(BindingCodecTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseBindings("no-equals-sign").ok());
  EXPECT_FALSE(ParseBindings("x=Zvalue").ok());   // missing ':'
  EXPECT_FALSE(ParseBindings("x=Q:value").ok());  // bad kind tag
  EXPECT_FALSE(ParseBindings("x=U:v\\").ok());    // dangling escape
}

BindingSet Row(std::initializer_list<std::pair<std::string, std::string>> kv) {
  BindingSet row;
  for (const auto& [var, val] : kv) row[var] = Term::Uri(val);
  return row;
}

TEST(BindingDeduperTest, FirstSeenOrderIndexes) {
  BindingDeduper dedup;
  EXPECT_EQ(dedup.Intern(Row({{"x", "a"}})), 0u);
  EXPECT_EQ(dedup.Intern(Row({{"x", "b"}})), 1u);
  EXPECT_EQ(dedup.Intern(Row({{"x", "a"}})), 0u);  // stable on re-insert
  EXPECT_EQ(dedup.size(), 2u);
}

TEST(BindingDeduperTest, InsertReportsFirstSighting) {
  BindingDeduper dedup;
  EXPECT_TRUE(dedup.Insert(Row({{"x", "a"}, {"y", "b"}})));
  EXPECT_FALSE(dedup.Insert(Row({{"x", "a"}, {"y", "b"}})));
  // Same terms under a different variable are a different row.
  EXPECT_TRUE(dedup.Insert(Row({{"x", "b"}, {"y", "a"}})));
  EXPECT_EQ(dedup.size(), 2u);
}

TEST(BindingDeduperTest, DistinguishesTermKinds) {
  BindingDeduper dedup;
  BindingSet uri, lit;
  uri["x"] = Term::Uri("v");
  lit["x"] = Term::Literal("v");
  EXPECT_TRUE(dedup.Insert(uri));
  EXPECT_TRUE(dedup.Insert(lit));
  EXPECT_EQ(dedup.size(), 2u);
}

TEST(BindingDeduperTest, EmptyRowIsARow) {
  BindingDeduper dedup;
  EXPECT_TRUE(dedup.Insert(BindingSet{}));
  EXPECT_FALSE(dedup.Insert(BindingSet{}));
  EXPECT_EQ(dedup.size(), 1u);
}

TEST(BindingDeduperTest, WideRowsFallBackToSerializedForm) {
  // More than kMaxInlineVars variables: the packed key cannot hold the row,
  // dedup must still work through the string fallback.
  auto wide = [](const std::string& tail) {
    BindingSet row;
    for (size_t i = 0; i < BindingDeduper::kMaxInlineVars + 2; ++i) {
      row["v" + std::to_string(i)] = Term::Uri("t" + std::to_string(i));
    }
    row["z"] = Term::Uri(tail);
    return row;
  };
  BindingDeduper dedup;
  EXPECT_EQ(dedup.Intern(wide("a")), 0u);
  EXPECT_EQ(dedup.Intern(wide("b")), 1u);
  EXPECT_EQ(dedup.Intern(wide("a")), 0u);
  EXPECT_EQ(dedup.size(), 2u);
}

TEST(BindingDeduperTest, InlineAndWideRowsShareIndexSpace) {
  BindingDeduper dedup;
  BindingSet narrow;
  narrow["x"] = Term::Uri("a");
  BindingSet wide;
  for (size_t i = 0; i < BindingDeduper::kMaxInlineVars + 1; ++i) {
    wide["v" + std::to_string(i)] = Term::Uri("t");
  }
  EXPECT_EQ(dedup.Intern(narrow), 0u);
  EXPECT_EQ(dedup.Intern(wide), 1u);
  EXPECT_EQ(dedup.Intern(narrow), 0u);
  EXPECT_EQ(dedup.Intern(wide), 1u);
  EXPECT_EQ(dedup.size(), 2u);
}

}  // namespace
}  // namespace gridvine
