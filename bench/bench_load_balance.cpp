// Experiment E7 — index load balancing (paper Sections 1-2):
//
//   the physical layer is "liable for index load-balancing"; GridVine's
//   order-preserving hash skews the key distribution, and P-Grid absorbs the
//   skew by growing an *unbalanced* trie adapted to the data.
//
// We place the 50-schema bioinformatic corpus (each triple indexed 3x) under
// three configurations and report the per-peer load distribution:
//
//   A. uniform hash + balanced trie       (classic DHT; baseline)
//   B. order-preserving hash + balanced   (naive: shows the skew problem)
//   C. order-preserving hash + adaptive   (GridVine: skew absorbed)
//
//   $ ./bench/bench_load_balance

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "common/hash.h"
#include "pgrid/load_stats.h"
#include "pgrid/pgrid_builder.h"
#include "workload/bio_workload.h"

using namespace gridvine;

namespace {

constexpr int kKeyDepth = 64;  // deep enough that clustered URIs separate

struct Overlay {
  explicit Overlay(size_t n, bool load_aware = false)
      : net(&sim, std::make_unique<ConstantLatency>(0.01), Rng(1)) {
    PGridPeer::Options opts;
    opts.key_depth = kKeyDepth;
    opts.load_aware = load_aware;
    for (size_t i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<PGridPeer>(&sim, &net, Rng(31 + i), opts));
      peers.push_back(owned.back().get());
    }
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<PGridPeer>> owned;
  std::vector<PGridPeer*> peers;
};

/// Places each key at its responsible peer (pure placement: routing does not
/// change WHERE data lands, so the load measurement needs no messages).
/// Every entry gets a distinct value so none collapse under the idempotent
/// insert — we are counting index entries, not distinct (key, value) pairs.
void Place(Overlay* o, const std::vector<Key>& keys) {
  size_t seq = 0;
  for (const Key& k : keys) {
    for (auto* p : o->peers) {
      if (p->path().IsPrefixOf(k)) {
        p->InsertLocal(k, "t" + std::to_string(seq++));
        break;
      }
    }
  }
}

void Report(const char* label, const LoadStats& s) {
  std::printf("  %-42s %8zu %8.1f %9.2f %7.3f\n", label, s.total, s.mean,
              s.max_over_mean, s.gini);
}

/// Minimal mediation-layer payload for the request-serving experiment: the
/// delivery itself is the load unit, no handler needed.
struct BenchPayload : MessageBody {
  MsgType TypeTag() const override {
    static const MsgType t = MsgType::Intern("bench.payload");
    return t;
  }
  size_t SizeBytes() const override { return 8; }
};

/// Request-serving (replica read) imbalance: Zipf-hot key regions are read
/// through the overlay with blind random vs load-aware replica selection.
/// The peer count is deliberately NOT a power of two, so BuildBalanced
/// round-robins peers onto 2^d paths and most regions carry two replicas —
/// the alternatives load-aware selection spreads over.
LoadStats RunRequestLoad(bool load_aware) {
  constexpr size_t kReqPeers = 48;  // d = 5: 32 regions, 16 doubly replicated
  constexpr size_t kRequests = 20000;
  Overlay o(kReqPeers, load_aware);
  Rng rng(11);
  PGridBuilder::BuildBalanced(o.peers, &rng, /*refs_per_level=*/4);
  // Zipf(1.1) over the 32 regions: region r is addressed by the path of the
  // r-th distinct peer, so hot regions concentrate on few replica sets.
  std::vector<double> cdf;
  double mass = 0;
  for (size_t r = 0; r < 32; ++r) {
    mass += 1.0 / std::pow(double(r + 1), 1.1);
    cdf.push_back(mass);
  }
  // One gateway issues everything — the mediation-layer shape (an issuing
  // peer fanning a query's scans out), and the regime where the gateway's
  // local send counters carry enough signal to equalize its alternatives.
  Rng req_rng(23);
  constexpr size_t kGateway = 47;
  for (size_t i = 0; i < kRequests; ++i) {
    double u = req_rng.UniformDouble(0.0, mass);
    size_t region = 0;
    while (region + 1 < cdf.size() && cdf[region] < u) ++region;
    const Key& key = o.peers[region]->path();
    o.peers[kGateway]->Route(key, std::make_shared<BenchPayload>());
    if (i % 256 == 0) o.sim.Run();  // keep the in-flight queue bounded
  }
  o.sim.Run();
  return ComputeRequestLoadStats(o.peers);
}

}  // namespace

int main(int argc, char** argv) {
  gridvine::bench::BenchJson json(argc, argv, "bench_load_balance");
  const size_t kPeers = 128;

  BioWorkload::Options wl;
  wl.num_schemas = 50;
  wl.num_entities = 500;
  wl.entities_per_schema = 42;
  wl.seed = 7;
  BioWorkload workload(wl);

  // The three index keys of every triple, under both hash functions.
  OrderPreservingHash oph(kKeyDepth);
  std::vector<Key> op_keys, uni_keys;
  for (size_t s = 0; s < workload.schemas().size(); ++s) {
    for (const auto& t : workload.TriplesFor(s)) {
      for (const auto& term :
           {t.subject().value(), t.predicate().value(), t.object().value()}) {
        op_keys.push_back(oph(term));
        uni_keys.push_back(UniformHash(term, kKeyDepth));
      }
    }
  }

  std::printf("E7: per-peer index load, %zu peers, %zu index entries\n\n",
              kPeers, op_keys.size());
  std::printf("  %-42s %8s %8s %9s %7s\n", "configuration", "total", "mean",
              "max/mean", "gini");

  auto record = [&json](const char* row, const LoadStats& s) {
    json.Add(row, {{"total", double(s.total)},
                   {"mean", s.mean},
                   {"max_over_mean", s.max_over_mean},
                   {"gini", s.gini}});
  };
  {
    Overlay o(kPeers);
    Rng rng(11);
    PGridBuilder::BuildBalanced(o.peers, &rng);
    Place(&o, uni_keys);
    auto s = ComputeLoadStats(o.peers);
    Report("A uniform hash + balanced trie", s);
    record("uniform_balanced", s);
  }
  {
    Overlay o(kPeers);
    Rng rng(11);
    PGridBuilder::BuildBalanced(o.peers, &rng);
    Place(&o, op_keys);
    auto s = ComputeLoadStats(o.peers);
    Report("B order-preserving hash + balanced trie", s);
    record("order_preserving_balanced", s);
  }
  {
    Overlay o(kPeers);
    Rng rng(11);
    PGridBuilder::BuildAdaptive(o.peers, op_keys, &rng);
    Place(&o, op_keys);
    auto s = ComputeLoadStats(o.peers);
    Report("C order-preserving hash + adaptive trie", s);
    record("order_preserving_adaptive", s);
  }

  std::printf("\n  expectation: B is badly skewed (high gini); C restores "
              "balance close to A while keeping\n  the range locality that "
              "order preservation buys.\n");

  // D. Request-serving load under Zipf-hot reads: blind vs load-aware
  // replica selection (the conjunctive executor's RemoteScan path).
  std::printf("\nrequest-serving load, Zipf(1.1) reads, 48 peers / 32 "
              "regions\n\n");
  std::printf("  %-42s %8s %8s %9s %7s\n", "configuration", "total", "mean",
              "max/mean", "gini");
  auto blind = RunRequestLoad(false);
  Report("D1 blind random replica selection", blind);
  record("request_blind", blind);
  auto aware = RunRequestLoad(true);
  Report("D2 load-aware replica selection", aware);
  record("request_load_aware", aware);
  std::printf("\n  expectation: parity — the Zipf skew across regions "
              "dominates both modes; load-aware\n  selection holds the "
              "spread of blind random selection while drawing nothing from "
              "the rng\n  (deterministic replays) and feeding the failover "
              "path a least-loaded alternative.\n");
  json.Finish();
  return 0;
}
