#include "selforg/embedding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "selforg/attribute_matcher.h"

namespace gridvine {
namespace {

TEST(EmbeddingTest, DeterministicAndNormalized) {
  std::set<std::string> values = {"DNA", "RNA"};
  Embedding a = EmbedAttribute("OrganismName", values);
  Embedding b = EmbedAttribute("OrganismName", values);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_EQ(a, b);
  double norm = 0;
  for (float x : a) norm += double(x) * double(x);
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(EmbeddingTest, CosineBoundsAndIdentity) {
  Embedding a = EmbedAttribute("AccessionNumber", {});
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-6);
  EXPECT_EQ(CosineSimilarity(a, Embedding{}), 0.0);
  EXPECT_EQ(CosineSimilarity(Embedding{}, Embedding{}), 0.0);

  Embedding b = EmbedAttribute("CreationDate", {});
  double sim = CosineSimilarity(a, b);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  EXPECT_LT(sim, CosineSimilarity(a, a));
}

TEST(EmbeddingTest, SharedValuesPullVectorsTogether) {
  // Same observed values, unrelated names: the value trigrams dominate the
  // distance relative to a pair with disjoint values.
  std::set<std::string> shared = {"Aspergillus niger", "Homo sapiens",
                                  "Escherichia coli"};
  Embedding a = EmbedAttribute("Organism", shared);
  Embedding b = EmbedAttribute("TaxonName", shared);
  Embedding c = EmbedAttribute("TaxonName",
                               {"PMID:9847074", "PMID:11226230"});
  EXPECT_GT(CosineSimilarity(a, b), CosineSimilarity(a, c));
}

TEST(EmbeddingTest, NameVariantsOfSameConceptScoreHigh) {
  Embedding a = EmbedAttribute("organism_name", {});
  Embedding b = EmbedAttribute("OrganismName", {});
  // Normalization (case fold, separator strip) makes these identical.
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0, 1e-6);
}

TEST(EmbeddingMatcherTest, ChannelOffByDefault) {
  AttributeMatcher plain;
  EXPECT_EQ(plain.options().embedding_weight, 0.0);

  // With the channel disabled, attached tables change nothing.
  EmbeddingTable src, dst;
  src["A#x"] = EmbedAttribute("x", {});
  dst["B#y"] = EmbedAttribute("y", {});
  AttributeMatcher with_tables;
  with_tables.SetEmbeddings(&src, &dst);
  AttributeMatcher::ValueSets none;
  EXPECT_EQ(plain.Score("A#x", "B#y", none, none),
            with_tables.Score("A#x", "B#y", none, none));
}

TEST(EmbeddingMatcherTest, EmbeddingChannelShiftsScores) {
  std::set<std::string> shared = {"alpha", "beta", "gamma"};
  EmbeddingTable src, dst;
  src["A#Foo"] = EmbedAttribute("Foo", shared);
  dst["B#Qux"] = EmbedAttribute("Qux", shared);
  dst["B#Zed"] = EmbedAttribute("Zed", {"one", "two", "three"});

  AttributeMatcher::Options opts;
  opts.embedding_weight = 1.0;
  opts.lexical_weight = 0.0;
  opts.value_weight = 0.0;
  AttributeMatcher m(opts);
  m.SetEmbeddings(&src, &dst);

  AttributeMatcher::ValueSets none;
  double same_values = m.Score("A#Foo", "B#Qux", none, none);
  double diff_values = m.Score("A#Foo", "B#Zed", none, none);
  EXPECT_GT(same_values, diff_values);
}

TEST(EmbeddingMatcherTest, MissingVectorFallsBackToOtherChannels) {
  EmbeddingTable src, dst;  // empty: no vectors at all
  AttributeMatcher::Options opts;
  opts.embedding_weight = 0.5;
  AttributeMatcher with(opts);
  with.SetEmbeddings(&src, &dst);
  AttributeMatcher without;  // default: lexical + value only

  AttributeMatcher::ValueSets none;
  // Both reduce to the renormalized lexical channel.
  EXPECT_EQ(with.Score("A#Organism", "B#OrganismName", none, none),
            without.Score("A#Organism", "B#OrganismName", none, none));
}

}  // namespace
}  // namespace gridvine
