#include "sim/fault_plan.h"

#include <algorithm>

namespace gridvine {

void FaultPlan::AddPartition(const Partition& partition) {
  PartitionSpec spec;
  spec.start = partition.start;
  spec.end = partition.end;
  NodeId max_id = 0;
  for (NodeId id : partition.group_a) max_id = std::max(max_id, id);
  for (NodeId id : partition.group_b) max_id = std::max(max_id, id);
  spec.side.assign(size_t(max_id) + 1, 0);
  for (NodeId id : partition.group_a) spec.side[id] = 1;
  for (NodeId id : partition.group_b) spec.side[id] = 2;
  partitions_.push_back(std::move(spec));
}

namespace {

/// Shared implementations, generic over the two Rng flavours (the seeded
/// mt19937 Rng of the single-threaded network, the per-node SmallRng streams
/// of the sharded one). Both expose Bernoulli/Exponential.
template <typename AnyRng>
bool ShouldDropImpl(const std::vector<FaultPlan::LossBurst>& bursts,
                    SimTime now, AnyRng* rng, DropCause* cause) {
  for (const auto& b : bursts) {
    if (now < b.start || now >= b.end || b.probability <= 0) continue;
    if (rng->Bernoulli(b.probability)) {
      *cause = DropCause::kBurstLoss;
      return true;
    }
  }
  return false;
}

template <typename AnyRng>
SimTime ExtraLatencyImpl(const std::vector<FaultPlan::LatencySpike>& spikes,
                         SimTime now, AnyRng* rng) {
  SimTime extra = 0;
  for (const auto& s : spikes) {
    if (now < s.start || now >= s.end) continue;
    extra += s.extra;
    if (s.extra_mean_tail > 0) {
      extra += rng->Exponential(1.0 / s.extra_mean_tail);
    }
  }
  return extra;
}

}  // namespace

bool FaultPlan::PartitionDrop(SimTime now, NodeId from, NodeId to,
                              DropCause* cause) const {
  for (const PartitionSpec& p : partitions_) {
    if (now < p.start || now >= p.end) continue;
    uint8_t sf = from < p.side.size() ? p.side[from] : 0;
    uint8_t st = to < p.side.size() ? p.side[to] : 0;
    if (sf != 0 && st != 0 && sf != st) {
      *cause = DropCause::kPartition;
      return true;
    }
  }
  return false;
}

bool FaultPlan::ShouldDrop(SimTime now, NodeId from, NodeId to, Rng* rng,
                           DropCause* cause) const {
  if (PartitionDrop(now, from, to, cause)) return true;
  return ShouldDropImpl(bursts_, now, rng, cause);
}

bool FaultPlan::ShouldDrop(SimTime now, NodeId from, NodeId to, SmallRng* rng,
                           DropCause* cause) const {
  if (PartitionDrop(now, from, to, cause)) return true;
  return ShouldDropImpl(bursts_, now, rng, cause);
}

bool FaultPlan::ShouldDuplicate(Rng* rng) const {
  return duplicate_probability_ > 0 && rng->Bernoulli(duplicate_probability_);
}

bool FaultPlan::ShouldDuplicate(SmallRng* rng) const {
  return duplicate_probability_ > 0 && rng->Bernoulli(duplicate_probability_);
}

SimTime FaultPlan::ExtraLatency(SimTime now, Rng* rng) const {
  return ExtraLatencyImpl(spikes_, now, rng);
}

SimTime FaultPlan::ExtraLatency(SimTime now, SmallRng* rng) const {
  return ExtraLatencyImpl(spikes_, now, rng);
}

}  // namespace gridvine
