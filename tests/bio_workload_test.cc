#include "workload/bio_workload.h"

#include <gtest/gtest.h>

#include <set>

namespace gridvine {
namespace {

BioWorkload::Options SmallOptions() {
  BioWorkload::Options o;
  o.num_schemas = 8;
  o.num_entities = 60;
  o.entities_per_schema = 20;
  o.min_attrs = 4;
  o.max_attrs = 7;
  o.value_noise = 0.0;
  o.seed = 7;
  return o;
}

TEST(BioWorkloadTest, GeneratesRequestedShape) {
  BioWorkload w(SmallOptions());
  EXPECT_EQ(w.schemas().size(), 8u);
  for (size_t s = 0; s < w.schemas().size(); ++s) {
    const Schema& schema = w.schemas()[s];
    EXPECT_TRUE(schema.Validate().ok()) << schema.name();
    EXPECT_GE(schema.attributes().size(), 4u);
    EXPECT_LE(schema.attributes().size(), 7u);
    // Organism concept always realized.
    EXPECT_FALSE(w.AttributeFor(s, "organism").empty());
    EXPECT_EQ(w.EntitiesOf(s).size(), 20u);
    EXPECT_EQ(w.TriplesFor(s).size(), 20u * schema.attributes().size());
  }
  EXPECT_GT(w.TotalTriples(), 0u);
}

TEST(BioWorkloadTest, FiftySchemasHaveUniqueNames) {
  BioWorkload::Options o = SmallOptions();
  o.num_schemas = 50;
  BioWorkload w(o);
  std::set<std::string> names;
  for (const auto& s : w.schemas()) names.insert(s.name());
  EXPECT_EQ(names.size(), 50u);
}

TEST(BioWorkloadTest, DeterministicForSeed) {
  BioWorkload a(SmallOptions());
  BioWorkload b(SmallOptions());
  EXPECT_EQ(a.schemas()[3].attributes(), b.schemas()[3].attributes());
  EXPECT_EQ(a.TriplesFor(2), b.TriplesFor(2));
}

TEST(BioWorkloadTest, ConceptGroundTruthConsistent) {
  BioWorkload w(SmallOptions());
  for (size_t s = 0; s < w.schemas().size(); ++s) {
    for (const auto& uri : w.schemas()[s].AttributeUris()) {
      std::string c = w.ConceptOf(uri);
      EXPECT_FALSE(c.empty()) << uri;
      EXPECT_EQ(w.AttributeFor(s, c), uri);
    }
  }
  EXPECT_EQ(w.ConceptOf("Nope#Nothing"), "");
}

TEST(BioWorkloadTest, SharedReferencesExistAcrossSchemas) {
  BioWorkload w(SmallOptions());
  // With 20 of 60 entities per schema, overlaps are essentially guaranteed.
  std::set<std::string> s0(w.EntitiesOf(0).begin(), w.EntitiesOf(0).end());
  size_t shared_with_any = 0;
  for (size_t s = 1; s < w.schemas().size(); ++s) {
    for (const auto& e : w.EntitiesOf(s)) {
      if (s0.count(e)) {
        ++shared_with_any;
        break;
      }
    }
  }
  EXPECT_GT(shared_with_any, 0u);
}

TEST(BioWorkloadTest, SameConceptSameValueAcrossSchemas) {
  BioWorkload w(SmallOptions());  // noise = 0
  // Find an entity described by schemas 0 and 1 with a shared concept.
  std::set<std::string> s0(w.EntitiesOf(0).begin(), w.EntitiesOf(0).end());
  for (const auto& t0 : w.TriplesFor(0)) {
    std::string c = w.ConceptOf(t0.predicate().value());
    std::string other_attr = w.AttributeFor(1, c);
    if (other_attr.empty()) continue;
    for (const auto& t1 : w.TriplesFor(1)) {
      if (t1.subject() == t0.subject() &&
          t1.predicate().value() == other_attr) {
        EXPECT_EQ(t0.object().value(), t1.object().value())
            << "entity " << t0.subject() << " concept " << c;
      }
    }
  }
}

TEST(BioWorkloadTest, GroundTruthMappingIsPerfect) {
  BioWorkload w(SmallOptions());
  SchemaMapping m = w.GroundTruthMapping(0, 1, "gt-0-1");
  EXPECT_GT(m.size(), 0u);
  EXPECT_DOUBLE_EQ(w.MappingPrecision(m), 1.0);
  EXPECT_EQ(m.provenance(), MappingProvenance::kManual);
  EXPECT_TRUE(m.bidirectional());
}

TEST(BioWorkloadTest, ErroneousMappingIsFullyWrong) {
  BioWorkload w(SmallOptions());
  Rng rng(3);
  SchemaMapping m = w.ErroneousMapping(0, 1, "err-0-1", &rng);
  ASSERT_GE(m.size(), 2u);
  EXPECT_DOUBLE_EQ(w.MappingPrecision(m), 0.0);
  EXPECT_EQ(m.provenance(), MappingProvenance::kAutomatic);
}

TEST(BioWorkloadTest, QueriesHaveNonEmptyGroundTruth) {
  BioWorkload w(SmallOptions());
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    size_t s = size_t(rng.UniformInt(0, 7));
    auto gq = w.MakeQuery(s, &rng);
    EXPECT_TRUE(gq.query.Validate().ok());
    EXPECT_FALSE(gq.expected_subjects.empty())
        << gq.query.ToString() << " (concept " << gq.concept_name << ")";
    EXPECT_EQ(gq.schema, w.schemas()[s].name());
    // The query's pattern constrains an attribute of the right schema.
    EXPECT_EQ(Schema::SchemaOfUri(gq.query.pattern().predicate().value()),
              gq.schema);
  }
}

TEST(BioWorkloadTest, LocalMatchesAreSubsetOfExpected) {
  BioWorkload w(SmallOptions());
  Rng rng(11);
  auto gq = w.MakeQuery(2, &rng);
  // Evaluate the pattern over schema 2's own triples: every local match must
  // be in the global expected set.
  for (const auto& t : w.TriplesFor(2)) {
    if (gq.query.pattern().Matches(t)) {
      EXPECT_TRUE(gq.expected_subjects.count(t.subject().value()))
          << t.ToString();
    }
  }
}

TEST(BioWorkloadTest, ConceptVocabularyIsStable) {
  auto names = BioWorkload::ConceptNames();
  EXPECT_GE(names.size(), 10u);
  EXPECT_EQ(names[0], "organism");
}

}  // namespace
}  // namespace gridvine
