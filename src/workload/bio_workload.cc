#include "workload/bio_workload.h"

#include <algorithm>

namespace gridvine {

namespace {

std::vector<std::string> Organisms() {
  return {"Aspergillus niger",        "Aspergillus flavus",
          "Aspergillus fumigatus",    "Penicillium chrysogenum",
          "Saccharomyces cerevisiae", "Escherichia coli",
          "Homo sapiens",             "Mus musculus",
          "Drosophila melanogaster",  "Caenorhabditis elegans",
          "Arabidopsis thaliana",     "Bacillus subtilis",
          "Candida albicans",         "Neurospora crassa",
          "Schizosaccharomyces pombe"};
}

}  // namespace

std::vector<BioWorkload::Concept> BioWorkload::BuildVocabulary() {
  std::vector<Concept> v;
  v.push_back({"organism",
               {"Organism", "OrganismName", "organism_name", "Species",
                "SpeciesName", "TaxonName"},
               Organisms()});
  v.push_back({"accession",
               {"AccessionNumber", "Accession", "AccNo", "EntryAccession",
                "acc_number"},
               {}});  // per-entity synthetic values
  v.push_back({"description",
               {"Description", "EntryDescription", "Definition", "Title",
                "desc_text"},
               {"putative kinase", "hypothetical protein", "DNA polymerase",
                "heat shock protein", "membrane transporter",
                "ribosomal protein", "zinc finger protein",
                "cytochrome oxidase", "histone H3", "elongation factor"}});
  v.push_back({"length",
               {"SequenceLength", "Length", "SeqLen", "length_bp",
                "ResidueCount"},
               {}});
  v.push_back({"moltype",
               {"MoleculeType", "MolType", "molecule_kind", "SeqType"},
               {"DNA", "RNA", "mRNA", "protein", "genomic DNA", "cDNA"}});
  v.push_back({"date",
               {"CreationDate", "DateCreated", "EntryDate", "created_on"},
               {"1998-02-11", "2001-07-30", "2003-04-02", "2005-11-18",
                "2006-06-06", "2007-01-23"}});
  v.push_back({"keywords",
               {"Keywords", "KeywordList", "keyword_set", "Tags"},
               {"kinase", "transferase", "hydrolase", "transcription",
                "membrane", "mitochondrion", "nucleus", "signal peptide"}});
  v.push_back({"taxonomy",
               {"TaxonomyId", "TaxonId", "NCBITaxon", "tax_identifier"},
               {"5061", "5059", "746128", "5076", "4932", "562", "9606",
                "10090", "7227", "6239"}});
  v.push_back({"gene",
               {"GeneName", "Gene", "gene_symbol", "Locus", "ORFName"},
               {"pelA", "glaA", "cytB", "rpoB", "act1", "tub2", "his3",
                "leu2", "ura3", "ade2"}});
  v.push_back({"protein",
               {"ProteinName", "Protein", "prot_name", "ProductName"},
               {"pectin lyase", "glucoamylase", "actin", "tubulin",
                "catalase", "superoxide dismutase", "enolase", "chitinase"}});
  v.push_back({"function",
               {"FunctionNote", "Function", "BiolFunction", "activity_note"},
               {"catalyzes hydrolysis", "binds DNA", "electron transport",
                "cell wall synthesis", "protein folding", "ion transport"}});
  v.push_back({"reference",
               {"Reference", "Citation", "PubMedRef", "literature_ref"},
               {"PMID:9847074", "PMID:11226230", "PMID:15077180",
                "PMID:16844780", "PMID:17237039", "PMID:12620386"}});
  return v;
}

double BioWorkload::Recall(const GeneratedQuery& gq,
                           const std::set<std::string>& found_subjects) {
  if (gq.expected_subjects.empty()) return 1.0;
  size_t hit = 0;
  for (const auto& s : found_subjects) hit += gq.expected_subjects.count(s);
  return double(hit) / double(gq.expected_subjects.size());
}

std::vector<std::string> BioWorkload::ConceptNames() {
  std::vector<std::string> names;
  for (const auto& c : BuildVocabulary()) names.push_back(c.name);
  return names;
}

std::string BioWorkload::ValueFor(size_t entity_idx, const Concept& concept_name,
                                  Rng* rng) {
  if (concept_name.name == "accession") {
    return "A" + std::to_string(10000 + entity_idx);
  }
  if (concept_name.name == "length") {
    return std::to_string(rng->UniformInt(90, 4200));
  }
  // Zipf-skewed draw from the pool (popular organisms dominate, as in the
  // real corpus).
  return concept_name.value_pool[rng->Zipf(concept_name.value_pool.size(), 0.9)];
}

BioWorkload::BioWorkload(Options options) : options_(options) {
  vocabulary_ = BuildVocabulary();
  Rng rng(options_.seed);

  // Entity population with global URIs and per-concept_name canonical values.
  for (int e = 0; e < options_.num_entities; ++e) {
    entity_uris_.push_back("ebi:P" + std::to_string(100000 + e));
    std::map<std::string, std::string> profile;
    for (const auto& concept_name : vocabulary_) {
      profile[concept_name.name] = ValueFor(size_t(e), concept_name, &rng);
    }
    entity_profiles_.push_back(std::move(profile));
  }

  // Schemas: each picks a concept_name subset and one name variant per concept_name.
  // Styles alternate so different schemas get different variants.
  const std::vector<std::string> schema_names_pool = {
      "EMBL",    "SwissProt", "PDB",     "EMP",     "GenBank", "UniProt",
      "TrEMBL",  "RefSeq",    "Ensembl", "FlyBase", "SGD",     "MGI",
      "TAIR",    "WormBase",  "KEGG",    "Pfam",    "InterPro", "PROSITE",
      "PIR",     "DDBJ"};
  for (int s = 0; s < options_.num_schemas; ++s) {
    std::string name = s < int(schema_names_pool.size())
                           ? schema_names_pool[size_t(s)]
                           : "BioDB" + std::to_string(s);
    // Concept subset: organism always present (the demo queries it), the
    // rest sampled.
    std::vector<size_t> concept_idx;
    for (size_t i = 1; i < vocabulary_.size(); ++i) concept_idx.push_back(i);
    rng.Shuffle(&concept_idx);
    int n_attrs = int(rng.UniformInt(options_.min_attrs, options_.max_attrs));
    n_attrs = std::clamp(n_attrs, 1, int(vocabulary_.size()));
    std::vector<size_t> chosen = {0};  // organism
    for (int i = 0; i < n_attrs - 1 && i < int(concept_idx.size()); ++i) {
      chosen.push_back(concept_idx[size_t(i)]);
    }

    std::vector<std::string> attrs;
    std::map<std::string, std::string> concept_to_attr;
    for (size_t ci : chosen) {
      const Concept& c = vocabulary_[ci];
      const std::string& variant =
          c.variants[size_t(s) % c.variants.size()];
      attrs.push_back(variant);
      concept_to_attr[c.name] = variant;
      attr_to_concept_[name + "#" + variant] = c.name;
    }
    schemas_.emplace_back(name, options_.domain, attrs);
    schema_concepts_.push_back(std::move(concept_to_attr));
  }

  // Entity assignment and triple emission.
  for (int s = 0; s < options_.num_schemas; ++s) {
    std::vector<size_t> entity_idx(entity_uris_.size());
    for (size_t i = 0; i < entity_idx.size(); ++i) entity_idx[i] = i;
    rng.Shuffle(&entity_idx);
    size_t take = std::min(size_t(options_.entities_per_schema),
                           entity_idx.size());
    std::vector<std::string> described;
    std::vector<Triple> triples;
    const Schema& schema = schemas_[size_t(s)];
    for (size_t i = 0; i < take; ++i) {
      size_t e = entity_idx[i];
      described.push_back(entity_uris_[e]);
      for (const auto& [concept_name, attr] : schema_concepts_[size_t(s)]) {
        std::string value = entity_profiles_[e].at(concept_name);
        if (options_.value_noise > 0 && rng.Bernoulli(options_.value_noise)) {
          value += " (v" + std::to_string(rng.UniformInt(2, 9)) + ")";
        }
        triples.emplace_back(Term::Uri(entity_uris_[e]),
                             Term::Uri(schema.AttributeUri(attr)),
                             Term::Literal(value));
      }
    }
    schema_entities_.push_back(std::move(described));
    triples_.push_back(std::move(triples));
  }
}

BioWorkload::SchemaEvolution BioWorkload::EvolveSchema(size_t schema_idx,
                                                       double rename_fraction,
                                                       Rng* rng) {
  SchemaEvolution ev;
  ev.schema_idx = schema_idx;
  ev.old_schema = schemas_[schema_idx];
  const std::string& schema_name = schemas_[schema_idx].name();

  // Candidate concepts: those realized here whose vocabulary offers an
  // alternative variant to move to.
  std::vector<std::string> candidates;
  for (const auto& [concept_name, _] : schema_concepts_[schema_idx]) {
    for (const auto& c : vocabulary_) {
      if (c.name == concept_name && c.variants.size() > 1) {
        candidates.push_back(concept_name);
        break;
      }
    }
  }
  rng->Shuffle(&candidates);
  size_t want = size_t(std::max<double>(
      1.0, rename_fraction * double(schema_concepts_[schema_idx].size())));
  if (want > candidates.size()) want = candidates.size();

  std::map<std::string, std::string> renames;  // old local name -> new
  for (size_t i = 0; i < want; ++i) {
    const std::string& concept_name = candidates[i];
    const std::string old_local = schema_concepts_[schema_idx][concept_name];
    const Concept* concept_ptr = nullptr;
    for (const auto& c : vocabulary_) {
      if (c.name == concept_name) concept_ptr = &c;
    }
    // A different variant, drawn uniformly among the alternatives; must not
    // collide with any other attribute of this schema (variants are unique
    // per concept, so only the renamed attribute itself is excluded).
    std::vector<std::string> others;
    for (const auto& v : concept_ptr->variants) {
      if (v != old_local && !schemas_[schema_idx].HasAttribute(v)) {
        others.push_back(v);
      }
    }
    if (others.empty()) continue;
    const std::string& new_local =
        others[size_t(rng->UniformInt(0, int64_t(others.size()) - 1))];

    renames[old_local] = new_local;
    schema_concepts_[schema_idx][concept_name] = new_local;
    attr_to_concept_.erase(schema_name + "#" + old_local);
    attr_to_concept_[schema_name + "#" + new_local] = concept_name;
    ev.renamed_uris.emplace_back(schema_name + "#" + old_local,
                                 schema_name + "#" + new_local);
  }

  // Rebuild the schema with attribute order preserved.
  std::vector<std::string> attrs;
  for (const auto& a : schemas_[schema_idx].attributes()) {
    auto it = renames.find(a);
    attrs.push_back(it == renames.end() ? a : it->second);
  }
  schemas_[schema_idx] =
      Schema(schema_name, schemas_[schema_idx].domain(), std::move(attrs));
  ev.new_schema = schemas_[schema_idx];

  // Re-predicate the emitted triples.
  std::map<std::string, std::string> uri_renames(ev.renamed_uris.begin(),
                                                 ev.renamed_uris.end());
  for (auto& t : triples_[schema_idx]) {
    auto it = uri_renames.find(t.predicate().value());
    if (it == uri_renames.end()) continue;
    ev.removed_triples.push_back(t);
    t = Triple(t.subject(), Term::Uri(it->second), t.object());
    ev.added_triples.push_back(t);
  }
  return ev;
}

std::string BioWorkload::ConceptOf(const std::string& attr_uri) const {
  auto it = attr_to_concept_.find(attr_uri);
  return it == attr_to_concept_.end() ? "" : it->second;
}

std::string BioWorkload::AttributeFor(size_t schema_idx,
                                      const std::string& concept_name) const {
  const auto& m = schema_concepts_[schema_idx];
  auto it = m.find(concept_name);
  if (it == m.end()) return "";
  return schemas_[schema_idx].AttributeUri(it->second);
}

size_t BioWorkload::TotalTriples() const {
  size_t n = 0;
  for (const auto& t : triples_) n += t.size();
  return n;
}

SchemaMapping BioWorkload::GroundTruthMapping(size_t src_idx, size_t dst_idx,
                                              const std::string& id) const {
  SchemaMapping m(id, schemas_[src_idx].name(), schemas_[dst_idx].name());
  m.set_provenance(MappingProvenance::kManual);
  m.set_bidirectional(true);
  for (const auto& [concept_name, src_attr] : schema_concepts_[src_idx]) {
    auto it = schema_concepts_[dst_idx].find(concept_name);
    if (it == schema_concepts_[dst_idx].end()) continue;
    m.AddCorrespondence(schemas_[src_idx].AttributeUri(src_attr),
                        schemas_[dst_idx].AttributeUri(it->second))
        .ok();
  }
  return m;
}

SchemaMapping BioWorkload::ErroneousMapping(size_t src_idx, size_t dst_idx,
                                            const std::string& id,
                                            Rng* rng) const {
  SchemaMapping correct = GroundTruthMapping(src_idx, dst_idx, id);
  SchemaMapping m(id, correct.source_schema(), correct.target_schema());
  m.set_provenance(MappingProvenance::kAutomatic);
  m.set_bidirectional(true);
  m.set_confidence(0.7);
  // Derange the targets so every correspondence is wrong (when >= 2 exist).
  std::vector<std::string> sources, targets;
  for (const auto& [src, dst] : correct.correspondences()) {
    sources.push_back(src);
    targets.push_back(dst);
  }
  if (targets.size() >= 2) {
    std::vector<std::string> shuffled = targets;
    // Cyclic shift guarantees a derangement; shuffle first for variety.
    rng->Shuffle(&shuffled);
    for (size_t i = 0; i < shuffled.size(); ++i) {
      if (shuffled[i] == targets[i]) {
        std::swap(shuffled[i], shuffled[(i + 1) % shuffled.size()]);
      }
    }
    for (size_t i = 0; i < sources.size(); ++i) {
      m.AddCorrespondence(sources[i], shuffled[i]).ok();
    }
  } else {
    for (size_t i = 0; i < sources.size(); ++i) {
      m.AddCorrespondence(sources[i], targets[i]).ok();
    }
  }
  return m;
}

double BioWorkload::MappingPrecision(const SchemaMapping& mapping) const {
  if (mapping.correspondences().empty()) return 0.0;
  size_t correct = 0;
  for (const auto& [src, dst] : mapping.correspondences()) {
    std::string cs = ConceptOf(src);
    if (!cs.empty() && cs == ConceptOf(dst)) ++correct;
  }
  return double(correct) / double(mapping.correspondences().size());
}

BioWorkload::GeneratedQuery BioWorkload::MakeQuery(
    size_t schema_idx, Rng* rng, const std::string& force_concept) const {
  GeneratedQuery out;
  const auto& concepts = schema_concepts_[schema_idx];
  if (!force_concept.empty() && concepts.count(force_concept)) {
    out.concept_name = force_concept;
  } else {
    // Pick a concept with a categorical value pool (selective, non-empty).
    std::vector<std::string> usable;
    for (const auto& [concept_name, _] : concepts) {
      if (concept_name != "accession" && concept_name != "length") {
        usable.push_back(concept_name);
      }
    }
    out.concept_name =
        usable[size_t(rng->UniformInt(0, int64_t(usable.size()) - 1))];
  }
  out.schema = schemas_[schema_idx].name();
  std::string attr_uri = AttributeFor(schema_idx, out.concept_name);

  // Pick a target value from an entity this schema actually describes, and
  // constrain with a contains-pattern on a distinctive fragment (like the
  // paper's %Aspergillus%).
  const auto& described = schema_entities_[schema_idx];
  size_t pick = size_t(rng->UniformInt(0, int64_t(described.size()) - 1));
  // Map URI back to entity index.
  size_t entity_idx = 0;
  for (size_t e = 0; e < entity_uris_.size(); ++e) {
    if (entity_uris_[e] == described[pick]) {
      entity_idx = e;
      break;
    }
  }
  std::string value = entity_profiles_[entity_idx].at(out.concept_name);
  std::string fragment = value.substr(0, value.find(' '));
  std::string pattern = "%" + fragment + "%";

  out.query = TriplePatternQuery(
      "x", TriplePattern(Term::Var("x"), Term::Uri(attr_uri),
                         Term::Literal(pattern)));

  // Global expected answer: entities matching the pattern that are described
  // (with this concept_name) by at least one schema.
  for (size_t e = 0; e < entity_uris_.size(); ++e) {
    const std::string& v = entity_profiles_[e].at(out.concept_name);
    if (v.find(fragment) == std::string::npos) continue;
    bool described_somewhere = false;
    for (size_t s = 0; s < schemas_.size() && !described_somewhere; ++s) {
      if (!schema_concepts_[s].count(out.concept_name)) continue;
      for (const auto& uri : schema_entities_[s]) {
        if (uri == entity_uris_[e]) {
          described_somewhere = true;
          break;
        }
      }
    }
    if (described_somewhere) out.expected_subjects.insert(entity_uris_[e]);
  }
  return out;
}

}  // namespace gridvine
